"""Synchronization primitives for simulated tasks.

All primitives are engine-aware: ``wait`` suspends the calling simulated
task (virtual time may pass), ``set``/``notify`` wake waiters in FIFO order
so the simulation stays deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from .engine import Engine, Task

__all__ = ["SimEvent", "Broadcast", "SimQueue", "Counter", "wait_until"]


class SimEvent:
    """A one-shot event: once set, every past and future waiter proceeds."""

    __slots__ = ("engine", "_set", "_waiters", "name")

    def __init__(self, engine: Engine, name: str = "event"):
        self.engine = engine
        self.name = name
        self._set = False
        self._waiters: List[Task] = []

    def is_set(self) -> bool:
        """True once the event fired."""
        return self._set

    def set(self) -> None:
        if self._set:
            return
        self._set = True
        waiters, self._waiters = self._waiters, []
        for task in waiters:
            task.make_ready()

    def wait(self) -> None:
        if self._set:
            return
        task = self.engine._require_current()
        self._waiters.append(task)
        self.engine.block(f"event:{self.name}")


class Broadcast:
    """A multi-shot notification channel (condition variable without a lock).

    ``wait`` returns after the *next* ``notify_all``. Use ``wait_until`` to
    wait for a predicate over shared state.
    """

    __slots__ = ("engine", "_waiters", "name")

    def __init__(self, engine: Engine, name: str = "broadcast"):
        self.engine = engine
        self.name = name
        self._waiters: List[Task] = []

    def notify_all(self) -> None:
        """Wake every waiter registered since the last notify."""
        waiters, self._waiters = self._waiters, []
        for task in waiters:
            task.make_ready()

    def wait(self) -> None:
        task = self.engine._require_current()
        self._waiters.append(task)
        self.engine.block(f"broadcast:{self.name}")


def wait_until(broadcast: Broadcast, predicate: Callable[[], bool]) -> None:
    """Block the calling task until ``predicate()`` is true.

    The predicate is re-checked each time ``broadcast`` is notified; state
    changes that can satisfy waiters must notify the broadcast.
    """
    while not predicate():
        broadcast.wait()


class SimQueue:
    """Unbounded FIFO queue between simulated tasks."""

    __slots__ = ("engine", "_items", "_bcast")

    def __init__(self, engine: Engine, name: str = "queue"):
        self.engine = engine
        self._items: Deque[Any] = deque()
        self._bcast = Broadcast(engine, name)

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Append an item and wake waiters."""
        self._items.append(item)
        self._bcast.notify_all()

    def get(self) -> Any:
        """Block until an item is available; pop it."""
        wait_until(self._bcast, lambda: bool(self._items))
        return self._items.popleft()

    def try_get(self) -> Optional[Any]:
        """Pop an item if present, else None (nonblocking)."""
        return self._items.popleft() if self._items else None


class Counter:
    """A monotonically updatable value tasks can wait on.

    This is the primitive behind GPUSHMEM signal waits
    (``signal_wait_until(addr, CMP, value)``).
    """

    __slots__ = ("engine", "_value", "_bcast")

    def __init__(self, engine: Engine, initial: int = 0, name: str = "counter"):
        self.engine = engine
        self._value = initial
        self._bcast = Broadcast(engine, name)

    @property
    def value(self) -> int:
        """Current counter value."""
        return self._value

    def set(self, value: int) -> None:
        self._value = value
        self._bcast.notify_all()

    def add(self, delta: int) -> None:
        """Adjust the value and wake waiters."""
        self._value += delta
        self._bcast.notify_all()

    def wait_for(self, predicate: Callable[[int], bool]) -> int:
        """Block until the predicate holds for the value; returns it."""
        wait_until(self._bcast, lambda: predicate(self._value))
        return self._value
