"""Lightweight event tracing for debugging and for tests that assert on
communication schedules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from .engine import Engine

__all__ = ["TraceRecord", "Tracer"]


@dataclass
class TraceRecord:
    kind: str
    t: float
    fields: Dict[str, Any]


@dataclass
class Tracer:
    """Collects ``engine.trace(...)`` records; attach with ``install``."""

    records: List[TraceRecord] = field(default_factory=list)

    def install(self, engine: Engine) -> "Tracer":
        """Attach this tracer to an engine's trace hook."""
        engine.trace_hook = self
        return self

    def __call__(self, kind: str, t: float = 0.0, **fields: Any) -> None:
        self.records.append(TraceRecord(kind, t, fields))

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All collected records of one event kind."""
        return [r for r in self.records if r.kind == kind]
