"""Deterministic, seed-driven fault injection on the virtual clock.

A :class:`FaultPlan` declares *what* can go wrong — transient link outages
and bandwidth-degradation windows, message drop/corruption on matching
transfers, rank crashes at a virtual time, straggler GPUs — and a
:class:`FaultInjector` binds one plan plus one seed to one engine/cluster
for one job. Everything is reproducible: the engine's interleaving is
deterministic, the injector's RNG is seeded, and all decisions are drawn in
simulation order, so the same (plan, seed, program) produces the identical
fault schedule, identical virtual-time results, and an identical trace.

The layer is free when idle: with no plan installed every hook is a single
``engine.fault_injector is None`` (or equivalent) check, no timers are
scheduled, and traces stay byte-identical to a build without this module
(``tests/sim/test_fastpath.py`` asserts this).

Spec grammar (``FaultPlan.parse``), clauses separated by ``;``, fields by
``,``, first token is the clause kind::

    down,link=nic-out[0],start=1e-3,end=2e-3       # link carries nothing
    degrade,link=nvlink*,factor=4,start=0,end=1    # serialization x factor
    drop,src=0,dst=1,tag=0,p=0.5,start=0,end=1e-3  # MPI wire drop
    corrupt,src=0,dst=1,p=0.1                      # detected via checksum
    crash,rank=2,at=5e-4                           # rank dies at t
    straggler,gpu=1,factor=2                       # kernels run x factor
    retry,base=2e-5,max=6                          # MPI backoff parameters
    watchdog,timeout=0.5                           # engine watchdog (s)

``link`` values are exact :class:`Link` names or :mod:`fnmatch` patterns
over them (exact names win, so the literal brackets in ``nic-out[0]`` are
not parsed as a character class); ``src``/``dst``/``tag`` are optional
filters (omitted = any) over *global* ranks and MPI tags; ``p`` is a
per-attempt probability drawn from the seeded RNG.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from fnmatch import fnmatchcase
from typing import Any, List, Optional, Tuple

from ..errors import FaultInjectionError
from .engine import Engine

__all__ = [
    "LinkFault",
    "MessageFault",
    "RankCrash",
    "Straggler",
    "FaultPlan",
    "FaultInjector",
    "SPEC_GRAMMAR",
]

_INF = float("inf")


def _link_matches(name: str, pattern: str) -> bool:
    """Exact-name match first, then :func:`fnmatchcase`.

    Link names contain literal brackets (``nvlink[1->2]``, ``nic-out[0]``),
    which :mod:`fnmatch` would otherwise parse as character classes — so the
    obvious spec ``down,link=nic-out[0]`` would silently match nothing.
    Exact names always work; glob metacharacters keep their meaning.
    """
    return name == pattern or fnmatchcase(name, pattern)

#: Human-readable spec grammar, appended to every parse error so a bad token
#: is diagnosable (and fixable) from the error text alone.
SPEC_GRAMMAR = """\
valid fault spec grammar (clauses separated by ';', fields by ','):
  down,link=<name|pattern>[,start=<s>][,end=<s>]
  degrade,link=<name|pattern>,factor=<f>[,start=<s>][,end=<s>]
  drop[,src=<rank>][,dst=<rank>][,tag=<tag>][,p=<prob>][,start=<s>][,end=<s>]
  corrupt[,src=<rank>][,dst=<rank>][,tag=<tag>][,p=<prob>][,start=<s>][,end=<s>]
  crash,rank=<rank>,at=<s>
  straggler,gpu=<gpu>,factor=<f>
  retry[,base=<s>][,max=<n>][,mult=<f>][,jitter=<f>][,timeout=<s>]
  watchdog,timeout=<s>"""


@dataclass(frozen=True)
class LinkFault:
    """A window during which a link is down or degraded.

    ``kind="down"``: the link carries nothing during ``[start, end)``;
    transfers arriving in the window wait for it to end (the physical layer
    recovers by itself, at a virtual-time cost). ``kind="degrade"``:
    serialization time is multiplied by ``factor`` for transfers starting in
    the window.
    """

    link: str  # fnmatch pattern over Link.name
    start: float
    end: float
    kind: str = "down"  # "down" | "degrade"
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("down", "degrade"):
            raise FaultInjectionError(f"unknown link fault kind {self.kind!r}")
        if self.end <= self.start:
            raise FaultInjectionError(f"empty fault window [{self.start}, {self.end})")
        if self.kind == "degrade" and self.factor < 1.0:
            raise FaultInjectionError(f"degrade factor must be >= 1, got {self.factor}")


@dataclass(frozen=True)
class MessageFault:
    """Drop or corrupt matching MPI wire transfers inside a window.

    ``None`` filters match anything. Corruption is detected by the modelled
    transport checksum, so both kinds trigger the retransmission path; they
    differ only in the recorded event kind.
    """

    kind: str  # "drop" | "corrupt"
    src: Optional[int] = None  # global rank filters
    dst: Optional[int] = None
    tag: Optional[int] = None
    start: float = 0.0
    end: float = _INF
    p: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("drop", "corrupt"):
            raise FaultInjectionError(f"unknown message fault kind {self.kind!r}")
        if not 0.0 < self.p <= 1.0:
            raise FaultInjectionError(f"fault probability must be in (0, 1], got {self.p}")

    def matches(self, src: int, dst: int, tag: int, now: float) -> bool:
        """True when this fault's filters and window cover the transfer."""
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        if self.tag is not None and self.tag != tag:
            return False
        return self.start <= now < self.end


@dataclass(frozen=True)
class RankCrash:
    """Kill one rank's simulated process at a virtual time."""

    rank: int
    at: float


@dataclass(frozen=True)
class Straggler:
    """Scale one GPU's kernel/launch costs by ``factor`` (>= 1)."""

    gpu: int
    factor: float

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise FaultInjectionError(f"straggler factor must be >= 1, got {self.factor}")


@dataclass(frozen=True)
class FaultPlan:
    """A declarative schedule of faults plus the recovery parameters."""

    link_faults: Tuple[LinkFault, ...] = ()
    message_faults: Tuple[MessageFault, ...] = ()
    crashes: Tuple[RankCrash, ...] = ()
    stragglers: Tuple[Straggler, ...] = ()
    retry_base: float = 2e-5  # first retransmission backoff (s)
    max_retries: int = 6  # retransmission budget per transfer
    retry_multiplier: float = 2.0  # backoff growth per attempt
    retry_jitter: float = 0.0  # seeded random slack, fraction of backoff
    retry_timeout: Optional[float] = None  # give up after this much time (s)
    watchdog: Optional[float] = None  # engine watchdog timeout (s)

    def empty(self) -> bool:
        """True when the plan injects nothing and installs no watchdog."""
        return not (
            self.link_faults
            or self.message_faults
            or self.crashes
            or self.stragglers
            or self.watchdog is not None
        )

    def retry_policy(self):
        """The plan's retransmission knobs as a unified RetryPolicy."""
        from ..resilience import RetryPolicy

        return RetryPolicy(
            base=self.retry_base,
            max_retries=self.max_retries,
            multiplier=self.retry_multiplier,
            jitter=self.retry_jitter,
            timeout=self.retry_timeout,
        )

    def to_spec(self) -> str:
        """Spec string preserving clause order: ``FaultPlan.parse(
        plan.to_spec())`` is equivalent to ``plan``, so any error text
        carrying it is replayable. For a *canonical* form that is equal
        for equivalent plans, use :meth:`spec_string`."""
        return self._spec("{:g}".format)

    def spec_string(self) -> str:
        """Canonical re-serialization: equivalent plans — any clause
        order, any float spelling (``1e-4`` vs ``0.0001``), any field
        order — produce the identical string, so config hashes built on
        it never cache-miss on formatting differences.

        Round trip: ``FaultPlan.parse(p.spec_string()).spec_string() ==
        p.spec_string()`` for every plan (floats render via :func:`repr`,
        which is lossless in Python 3).
        """
        def none_low(v):
            return (v is None, v if v is not None else 0)

        plan = replace(
            self,
            link_faults=tuple(sorted(
                self.link_faults,
                key=lambda lf: (lf.kind, lf.link, lf.start, lf.end, lf.factor))),
            message_faults=tuple(sorted(
                self.message_faults,
                key=lambda mf: (mf.kind, none_low(mf.src), none_low(mf.dst),
                                none_low(mf.tag), mf.start, mf.end, mf.p))),
            crashes=tuple(sorted(self.crashes, key=lambda cr: (cr.at, cr.rank))),
            stragglers=tuple(sorted(
                self.stragglers, key=lambda st: (st.gpu, st.factor))),
        )
        return plan._spec(lambda x: repr(float(x)))

    def _spec(self, fmt) -> str:
        """Render this plan as a spec string; ``fmt`` formats floats."""
        clauses: List[str] = []
        for lf in self.link_faults:
            c = f"{lf.kind},link={lf.link}"
            if lf.kind == "degrade":
                c += f",factor={fmt(lf.factor)}"
            if lf.start != 0.0:
                c += f",start={fmt(lf.start)}"
            if lf.end != _INF:
                c += f",end={fmt(lf.end)}"
            clauses.append(c)
        for mf in self.message_faults:
            c = mf.kind
            for name in ("src", "dst", "tag"):
                value = getattr(mf, name)
                if value is not None:
                    c += f",{name}={value}"
            if mf.p != 1.0:
                c += f",p={fmt(mf.p)}"
            if mf.start != 0.0:
                c += f",start={fmt(mf.start)}"
            if mf.end != _INF:
                c += f",end={fmt(mf.end)}"
            clauses.append(c)
        for cr in self.crashes:
            clauses.append(f"crash,rank={cr.rank},at={fmt(cr.at)}")
        for st in self.stragglers:
            clauses.append(f"straggler,gpu={st.gpu},factor={fmt(st.factor)}")
        defaults = FaultPlan()
        retry_fields = []
        if self.retry_base != defaults.retry_base:
            retry_fields.append(f"base={fmt(self.retry_base)}")
        if self.max_retries != defaults.max_retries:
            retry_fields.append(f"max={self.max_retries}")
        if self.retry_multiplier != defaults.retry_multiplier:
            retry_fields.append(f"mult={fmt(self.retry_multiplier)}")
        if self.retry_jitter != defaults.retry_jitter:
            retry_fields.append(f"jitter={fmt(self.retry_jitter)}")
        if self.retry_timeout is not None:
            retry_fields.append(f"timeout={fmt(self.retry_timeout)}")
        if retry_fields:
            clauses.append("retry," + ",".join(retry_fields))
        if self.watchdog is not None:
            clauses.append(f"watchdog,timeout={fmt(self.watchdog)}")
        return ";".join(clauses)

    @staticmethod
    def parse(spec: str) -> "FaultPlan":
        """Build a plan from the compact CLI spec string (see module doc).

        Any malformed spec raises :class:`FaultInjectionError` (which is
        also a :class:`ValueError`) naming the offending token and listing
        the full grammar.
        """
        plan = FaultPlan()
        links: List[LinkFault] = []
        messages: List[MessageFault] = []
        crashes: List[RankCrash] = []
        stragglers: List[Straggler] = []
        for clause in filter(None, (c.strip() for c in spec.split(";"))):
            parts = [p.strip() for p in clause.split(",")]
            kind, kv = parts[0], {}
            for item in parts[1:]:
                if "=" not in item:
                    raise FaultInjectionError(
                        f"malformed fault field {item!r} in clause {clause!r} "
                        f"(expected key=value)\n{SPEC_GRAMMAR}"
                    )
                key, value = item.split("=", 1)
                kv[key.strip()] = value.strip()
            try:
                if kind in ("down", "degrade"):
                    links.append(LinkFault(
                        link=kv.pop("link"),
                        start=float(kv.pop("start", 0.0)),
                        end=float(kv.pop("end", _INF)),
                        kind=kind,
                        factor=float(kv.pop("factor", 1.0)),
                    ))
                elif kind in ("drop", "corrupt"):
                    messages.append(MessageFault(
                        kind=kind,
                        src=int(kv.pop("src")) if "src" in kv else None,
                        dst=int(kv.pop("dst")) if "dst" in kv else None,
                        tag=int(kv.pop("tag")) if "tag" in kv else None,
                        start=float(kv.pop("start", 0.0)),
                        end=float(kv.pop("end", _INF)),
                        p=float(kv.pop("p", 1.0)),
                    ))
                elif kind == "crash":
                    crashes.append(RankCrash(rank=int(kv.pop("rank")), at=float(kv.pop("at"))))
                elif kind == "straggler":
                    stragglers.append(Straggler(gpu=int(kv.pop("gpu")), factor=float(kv.pop("factor"))))
                elif kind == "retry":
                    timeout = kv.pop("timeout", None)
                    plan = replace(plan,
                                   retry_base=float(kv.pop("base", plan.retry_base)),
                                   max_retries=int(kv.pop("max", plan.max_retries)),
                                   retry_multiplier=float(kv.pop("mult", plan.retry_multiplier)),
                                   retry_jitter=float(kv.pop("jitter", plan.retry_jitter)),
                                   retry_timeout=float(timeout) if timeout is not None else plan.retry_timeout)
                elif kind == "watchdog":
                    plan = replace(plan, watchdog=float(kv.pop("timeout")))
                else:
                    raise FaultInjectionError(
                        f"unknown fault clause kind {kind!r} in clause {clause!r}\n{SPEC_GRAMMAR}"
                    )
            except KeyError as exc:
                raise FaultInjectionError(
                    f"fault clause {clause!r} is missing required field {exc.args[0]!r}"
                    f"\n{SPEC_GRAMMAR}"
                ) from None
            except FaultInjectionError:
                raise
            except ValueError as exc:
                raise FaultInjectionError(
                    f"bad value in fault clause {clause!r}: {exc}\n{SPEC_GRAMMAR}"
                ) from None
            if kv:
                raise FaultInjectionError(
                    f"unknown field(s) {sorted(kv)} in fault clause {clause!r}\n{SPEC_GRAMMAR}"
                )
        return replace(plan,
                       link_faults=tuple(links),
                       message_faults=tuple(messages),
                       crashes=tuple(crashes),
                       stragglers=tuple(stragglers))


class FaultInjector:
    """One plan + one seed bound to one engine/cluster for one job.

    The injector is the single consultation point for every layer: the
    hardware model asks for link windows at install time, the MPI matcher
    asks :meth:`message_verdict` per wire attempt, GPUCCL asks
    :meth:`crashed_among`, devices ask :meth:`straggler_factor`. Every
    injected event and recovery is appended to :attr:`log` and emitted as a
    ``fault.*`` trace record, so injected faults are visible in the Chrome
    trace next to the traffic they perturb.
    """

    def __init__(self, plan: FaultPlan, seed: int = 0):
        self.plan = plan
        self.seed = seed
        self.rng = random.Random(seed)
        self.crashed_ranks: set = set()
        self.log: List[Tuple[float, str, dict]] = []
        self.engine: Optional[Engine] = None
        # Callbacks fired after a rank crash lands (rank: int) -> None.
        # The recovery runtime hangs consensus wake-ups off these.
        self.crash_hooks: List[Any] = []
        # (gpu_ids, active persistent downs) -> frozenset of dead rank pairs.
        self._dead_cache: dict = {}

    def describe(self) -> str:
        """One-line provenance, embedded in hang reports: spec + seed."""
        return f"fault spec {self.plan.to_spec()!r} seed={self.seed}"

    # ------------------------------------------------------------------ #
    # Installation.
    # ------------------------------------------------------------------ #

    def install(self, engine: Engine, cluster: Any = None) -> "FaultInjector":
        """Attach to an engine (and optionally its cluster); returns self."""
        if self.engine is not None:
            raise FaultInjectionError("fault injector already installed")
        self.engine = engine
        engine.fault_injector = self
        if self.plan.watchdog is not None:
            engine.watchdog_timeout = self.plan.watchdog
        if cluster is not None and self.plan.link_faults:
            cluster.link_fault_hook = self._decorate_link
            for links in (cluster._loop, cluster._intra, cluster._nic_out, cluster._nic_in):
                for link in links.values():
                    self._decorate_link(link)
            for path in cluster._paths.values():
                path.refresh_fault_check()
        for crash in self.plan.crashes:
            engine.schedule(crash.at, lambda c=crash: self._crash(c))
        # Window markers: injected faults show up on the trace timeline even
        # when no transfer happens to sample them.
        for lf in self.plan.link_faults:
            engine.schedule(lf.start, lambda f=lf: self.record(
                f"fault.link_{f.kind}", link=f.link, factor=f.factor, until=f.end))
            if lf.end != _INF:
                engine.schedule(lf.end, lambda f=lf: self.record(
                    "fault.link_restored", link=f.link))
        return self

    def _decorate_link(self, link: Any) -> None:
        """Attach this plan's matching fault windows to one link."""
        windows = sorted(
            (f.start, f.end, f.kind, f.factor)
            for f in self.plan.link_faults
            if _link_matches(link.name, f.link)
        )
        if windows:
            link.fault_windows = windows

    # ------------------------------------------------------------------ #
    # Queries (one per subsystem).
    # ------------------------------------------------------------------ #

    @property
    def has_message_faults(self) -> bool:
        """True when the MPI matcher must route through the fault path."""
        return bool(self.plan.message_faults)

    def message_verdict(self, src: int, dst: int, tag: int, now: float) -> Optional[str]:
        """Fate of one MPI wire attempt: ``"drop"``, ``"corrupt"`` or None.

        Probabilities are drawn from the seeded RNG in simulation order, so
        the verdict stream is reproducible run to run.
        """
        for fault in self.plan.message_faults:
            if fault.matches(src, dst, tag, now):
                if fault.p >= 1.0 or self.rng.random() < fault.p:
                    return fault.kind
        return None

    def straggler_factor(self, gpu: int) -> float:
        """Kernel-time multiplier for one GPU (1.0 = healthy)."""
        factor = 1.0
        for s in self.plan.stragglers:
            if s.gpu == gpu:
                factor = max(factor, s.factor)
        return factor

    def crashed_among(self, ranks) -> List[int]:
        """The subset of ``ranks`` that have crashed so far, sorted."""
        return sorted(r for r in ranks if r in self.crashed_ranks)

    def dead_pairs_for(self, topo) -> Optional[frozenset]:
        """Rank pairs of ``topo`` whose path crosses a *permanently* down
        link that is active at the current virtual time, or None.

        This is what lets :class:`repro.coll.CollPolicy` regenerate
        collective schedules around a dead link (ring -> tree fallback)
        instead of waiting forever on it. Transient outages (finite
        ``end``) are the physical layer's problem and are not rerouted.
        Cached per (placement, active-fault set); cheap when the plan has
        no persistent ``down`` clauses.
        """
        now = self.engine.now if self.engine is not None else 0.0
        active = tuple(
            (f.link, f.start)
            for f in self.plan.link_faults
            if f.kind == "down" and f.end == _INF and f.start <= now
        )
        if not active:
            return None
        key = (tuple(topo.gpu_ids), active)
        dead = self._dead_cache.get(key)
        if dead is None:
            patterns = [p for p, _ in active]

            def link_dead(link) -> bool:
                return any(_link_matches(link.name, p) for p in patterns)

            pairs = set()
            for a in range(topo.nranks):
                for b in range(topo.nranks):
                    if a == b:
                        continue
                    path = topo.cluster.path(topo.gpu_ids[a], topo.gpu_ids[b])
                    if any(link_dead(l) for l in path.links):
                        pairs.add((a, b))
            dead = frozenset(pairs)
            self._dead_cache[key] = dead
        return dead or None

    # ------------------------------------------------------------------ #
    # Event recording.
    # ------------------------------------------------------------------ #

    def record(self, kind: str, **fields: Any) -> None:
        """Append to the fault log and emit a ``fault.*`` trace record."""
        engine = self.engine
        self.log.append((engine.now if engine else 0.0, kind, dict(fields)))
        if engine is not None:
            engine.trace(kind, **fields)

    def _crash(self, crash: RankCrash) -> None:
        """Kill the rank's task: it stops dead, releasing nothing."""
        self.crashed_ranks.add(crash.rank)
        self.record("fault.crash", rank=crash.rank)
        engine = self.engine
        name = f"rank{crash.rank}"
        for task in list(engine._tasks):
            if task.name == name:
                task.poisoned = True
                task.make_ready()
                break
        for hook in list(self.crash_hooks):
            hook(crash.rank)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FaultInjector seed={self.seed} events={len(self.log)}>"
