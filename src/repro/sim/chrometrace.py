"""Export a :class:`Tracer`'s records as a Chrome-tracing timeline.

Open the produced JSON in ``chrome://tracing`` or Perfetto to see every
stream's operations and the MPI message flow of a run — the standard way to
debug overlap/serialization issues in this kind of system.

Stream ``start``/``complete`` pairs become duration ("X") events on one row
per (GPU, stream); span ``begin``/``end`` records (repro.obs, emitted when
a run opts into ``obs="spans"``) become nested duration ("B"/"E") events on
one row per rank; point records (enqueues, sends, receives) become instant
("i") events.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from .trace import TraceRecord, Tracer

__all__ = ["to_chrome_trace", "write_chrome_trace"]

_US = 1e6  # chrome traces use microseconds


def to_chrome_trace(tracer: Tracer) -> List[dict]:
    """Convert collected records into chrome trace events."""
    events: List[dict] = []
    open_ops: Dict[Tuple, TraceRecord] = {}
    for rec in tracer.records:
        f = rec.fields
        if rec.kind == "stream.start":
            open_ops[(f.get("gpu"), f.get("stream"), f.get("op"))] = rec
        elif rec.kind == "stream.complete":
            key = (f.get("gpu"), f.get("stream"), f.get("op"))
            started = open_ops.pop(key, None)
            begin = started.t if started is not None else rec.t
            events.append({
                "name": f.get("op", "?"),
                "ph": "X",
                "ts": begin * _US,
                "dur": max(0.0, (rec.t - begin)) * _US,
                "pid": f.get("gpu", 0),
                "tid": f.get("stream", "?"),
                "cat": "stream",
            })
        elif rec.kind in ("span.begin", "span.end"):
            # Begin/end slices nest by emission order; the per-engine span
            # seq keeps that order through the deterministic sort below
            # even when several records share one virtual timestamp.
            events.append({
                "name": f.get("name", "?"),
                "ph": "B" if rec.kind == "span.begin" else "E",
                "ts": rec.t * _US,
                "pid": f.get("rank", 0),
                "tid": f.get("tid", "uniconn"),
                "cat": f.get("cat", "span"),
                "args": {
                    k: v
                    for k, v in f.items()
                    if k not in ("name", "cat", "tid") and isinstance(v, (int, float, str))
                },
                "__seq": f.get("seq", 0),
            })
        else:
            events.append({
                "name": rec.kind,
                "ph": "i",
                "s": "t",
                "ts": rec.t * _US,
                "pid": f.get("gpu", f.get("src", 0)),
                "tid": f.get("stream", rec.kind),
                "cat": rec.kind.split(".")[0],
                "args": {k: v for k, v in f.items() if isinstance(v, (int, float, str))},
            })
    # Anything still open at the end (e.g. an op in flight when the run
    # stopped) is emitted as a zero-length marker so it stays visible.
    for (gpu, stream, op), rec in open_ops.items():
        events.append({
            "name": f"{op} (unfinished)",
            "ph": "i",
            "s": "t",
            "ts": rec.t * _US,
            "pid": gpu or 0,
            "tid": stream or "?",
            "cat": "stream",
        })
    # Canonical order: viewers sort by ts anyway, and tie-breaking on the
    # event's full content makes the file independent of the incidental
    # ordering of same-instant callbacks inside the engine — so two runs
    # (or the two scheduler modes) that simulate the same timeline emit
    # byte-identical traces. Span events additionally sort by their
    # emission seq before the content tie-break so B/E nesting survives
    # same-timestamp ties; every other event has seq 0, leaving the
    # default-level ordering (and byte-identity) untouched.
    events.sort(
        key=lambda e: (
            e["ts"],
            e.get("__seq", 0),
            json.dumps({k: v for k, v in e.items() if k != "__seq"}, sort_keys=True),
        )
    )
    for e in events:
        e.pop("__seq", None)
    return events


def write_chrome_trace(tracer: Tracer, path: str) -> str:
    """Write ``{"traceEvents": [...]}`` to ``path``; returns the path."""
    with open(path, "w") as fh:
        json.dump({"traceEvents": to_chrome_trace(tracer)}, fh)
    return path
