"""Graph capture & replay for steady-state iteration loops.

Long Jacobi/CG runs repeat an identical communication/compute DAG every
iteration, yet the engine re-schedules every event from scratch.  This
module records the engine's event timeline into a compact replay IR and —
once consecutive iterations prove structurally identical — replays whole
blocks of iterations as one fused, pre-resolved schedule that only
recomputes virtual-time offsets and payload effects (the simulated
analogue of CUDA Graphs capture/replay).

Replay IR
---------

While capture is enabled every fired timer becomes one ``_Entry`` in a
ring buffer:

- its *tag* ``(parent, delay, order)`` — the absolute index of the entry
  whose window scheduled it, the scheduling delay, and the per-window
  scheduling sequence number.  Together with the parent's fire time the
  tag fully determines the fire time (``parent.when + delay``), because a
  timer is always scheduled at the current virtual time and the engine's
  clock never runs backwards;
- its *window*: the ordered items produced between this fire and the
  next — trace records (``"r"``), payload effects (``"e"``: a keyed
  ``np.copyto``-style closure registered by the backends), schedules
  (``"s"``) and region boundary markers (``"b"``).

Fingerprinting
--------------

Applications annotate their steady-state loop with a
:class:`CaptureRegion` (``Coordinator.graph_begin``/``graph_end`` or
:func:`loop_region`) and call ``boundary(rank, i, n)`` once per
iteration.  The first rank to arrive becomes the *reference* rank; its
boundary marker cuts the timeline into per-iteration segments.  When the
last two periods of ``d`` iterations are bit-identical — entry tags,
trace-record fields, effect keys, schedule/boundary items, callback
extents, stream enqueue/complete balance, no task spawns, no link
congestion — the loop has converged to a steady state and the period is
promoted to a replay template.

Replay ("frontier takeover")
----------------------------

A takeover admits only a fully quiescent scheduler: an empty ready
queue, every frozen heap timer tagged, uncancelled, and matching the
template's schedule multiset exactly (what the template scheduled but
did not fire inside one period must be exactly the pending frontier).
Then, for ``K`` periods, the replay walks the template entries directly:
it advances ``engine.now`` with the same float arithmetic live
scheduling performs, re-emits the recorded trace records verbatim, and
re-runs the payload-effect closures against the *live* buffers — so
solver data advances value-exactly while per-event scheduler work
(timer heap, task handoffs) is skipped entirely.  Finally the pending
frontier timers are re-timed ``K`` periods later (standing in for the
in-flight tail of the last replayed iteration; their stale payload
deliveries are freshened from the template's re-snapshotted data),
engine name-sequences and metrics deltas are applied, and every rank's
loop consumes the skipped iterations through its next ``boundary()``.

Device-order marks (async-host loops)
-------------------------------------

A fully asynchronous host loop (GPUCCL/GPUSHMEM native variants)
enqueues every iteration without blocking: all of its ``boundary()``
calls land in one timer window, the marks collapse onto a single entry
index, and the detector can never cut the timeline into periods.  When
the reference rank sees three consecutive marks with an identical entry
index it switches the region to *device-mark* mode — provided the
caller passed its stream to ``boundary(..., stream=...)``.  From then
on every boundary call enqueues a silent :class:`_BoundaryOp` on the
rank's stream; the marker records the mark when the *device* reaches it
(stream FIFO order), which restores per-iteration periodicity.  A
device-mode takeover sizes ``K`` from the whole periods of markers
still queued (the host has already enqueued that work) and, instead of
granting the host loop skipped iterations, fast-forwards every attached
stream's queue past the replayed span.  Markers are invisible: they
emit no trace records, count in no stream balance, and take zero
virtual time, so an async captured run still traces byte-identically to
an uncaptured one.  If no stream is available — or the device marks
collapse too — capture disables itself with a recorded
``boundary-collapse:<region>`` reason instead of silently staying live.

Bailout rules
-------------

Anything nondeterministic or structurally unstable falls back to live
execution, which is trivially byte-identical: an installed fault
injector or sanitizer disables capture at launch; a communicator
revocation (``Engine.fence``) disables it mid-run; a watchdog, a
non-``replay_safe`` region, link congestion, a structure or frontier
mismatch, a cancelled or untagged pending timer, or a too-short
remaining tail each veto an individual takeover and count one bailout.
"""

from __future__ import annotations

import heapq
from collections import Counter
from math import frexp, gcd, ldexp
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional

__all__ = ["CaptureRuntime", "CaptureRegion", "loop_region", "CAPTURE_MODES"]

CAPTURE_MODES = ("off", "auto", "regions")

# Largest structural period (in iterations) probed by the detector.
_MAX_D = 4
# Ring housekeeping: prune when the ring exceeds this many entries.
_RING_PRUNE = 4096
# Entries of slack kept behind the oldest mark any region still needs.
_RING_SLACK = 512


def _lcm(a: int, b: int) -> int:
    return a * b // gcd(a, b)


class _Entry:
    """One fired timer: its tag plus the window of items it produced."""

    __slots__ = ("when", "parent", "delay", "order", "items", "cb_end")

    def __init__(self, when: float, parent: int, delay: float, order: int):
        self.when = when
        self.parent = parent
        self.delay = delay
        self.order = order
        self.items: List[tuple] = []
        self.cb_end = 0


class _Mark:
    """Reference-rank boundary: where one iteration cut the timeline."""

    __slots__ = ("i", "idx", "item_idx", "order", "enq", "comp", "spawn",
                 "seqs", "counters", "hists")

    def __init__(self, i, idx, item_idx, order, enq, comp, spawn, seqs,
                 counters, hists):
        self.i = i
        self.idx = idx              # absolute entry index of the window
        self.item_idx = item_idx    # marker's position in the window
        self.order = order          # schedule counter at the marker
        self.enq = enq              # stream enqueues so far
        self.comp = comp            # stream completions so far
        self.spawn = spawn          # tasks spawned so far
        self.seqs = seqs            # engine._name_seqs snapshot
        self.counters = counters    # metrics counter snapshot
        self.hists = hists          # metrics histogram snapshot


class _NullRegion:
    """Boundary sink used when capture is off: zero skips, zero cost."""

    __slots__ = ()

    def boundary(self, rank: int, i: int, n: Optional[int] = None,
                 stream=None) -> int:
        return 0


_NULL_REGION = _NullRegion()


class _BoundaryOp:
    """Silent stream op marking one iteration boundary in device order.

    Enqueued by :meth:`CaptureRegion.boundary` once a region has switched
    to device-mark mode.  It implements just enough of the ``StreamOp``
    surface for :class:`repro.gpu.stream.Stream` to carry it, and its
    ``silent`` flag keeps it out of traces, stream enqueue/complete
    balances and the sanitizer — the op exists only for the capture
    runtime and costs zero virtual time, so captured async runs still
    trace byte-identically to uncaptured ones.
    """

    silent = True

    __slots__ = ("engine", "name", "done", "completed_at", "stream",
                 "region", "rank", "i")

    def __init__(self, engine, region: "CaptureRegion", rank: int, i: int):
        from .sync import SimEvent

        self.engine = engine
        self.name = f"capture-boundary:{region.key}"
        self.done = SimEvent(engine, name=f"op:{self.name}")
        self.completed_at = None
        self.stream = None
        self.region = region
        self.rank = rank
        self.i = i

    def start(self) -> None:
        if self.region.rt.disabled is None:
            self.region._device_mark(self)
        self._complete()

    def _complete(self) -> None:
        self.completed_at = self.engine.now
        self.done.set()
        if self.stream is not None:
            self.stream._advance(self)


def loop_region(engine, name: str, *, replay_safe: bool = True,
                parity: int = 1, min_period: int = 1):
    """Region handle for an iteration loop; a no-op sink if capture is off."""
    cap = getattr(engine, "capture", None)
    if cap is None:
        return _NULL_REGION
    return cap.region(name, replay_safe=replay_safe, parity=parity,
                      min_period=min_period)


class CaptureRegion:
    """One annotated steady-state loop (shared by every rank's task)."""

    __slots__ = ("rt", "key", "replay_safe", "parity", "min_period",
                 "ref_rank", "last_i", "pending", "history", "keep",
                 "device_mode", "streams", "n_total")

    def __init__(self, rt: "CaptureRuntime", key: str, replay_safe: bool,
                 parity: int, min_period: int):
        self.rt = rt
        self.key = key
        self.replay_safe = replay_safe
        self.parity = max(1, int(parity))
        self.min_period = max(1, int(min_period))
        self.ref_rank: Optional[int] = None
        self.last_i: Dict[int, int] = {}
        self.pending: Dict[int, int] = {}
        self.history: List[_Mark] = []
        self.keep: Optional[int] = None  # oldest entry this region needs
        # Device-mark mode (async-host loops; see module docstring).
        self.device_mode = False
        self.streams: Dict[int, Any] = {}  # rank -> stream carrying markers
        self.n_total: Optional[int] = None

    # ------------------------------------------------------------------ #

    def boundary(self, rank: int, i: int, n: Optional[int] = None,
                 stream=None) -> int:
        """Mark the top of iteration ``i``; returns iterations to skip.

        The caller must advance its loop counter by the returned skip (the
        iterations were replayed) before deciding whether to run the body.
        Async-host loops pass their ``stream`` so a collapsing region can
        fall back to device-order markers instead of disabling capture.
        """
        rt = self.rt
        skip = self.pending.pop(rank, 0) if self.pending else 0
        self.last_i[rank] = i + skip
        if rt.disabled is not None:
            return skip
        if self.ref_rank is None:
            self.ref_rank = rank
        if self.device_mode:
            self._enqueue_marker(rank, i + skip, n, stream)
            return skip
        cur = rt._cur
        if rank != self.ref_rank:
            cur.items.append(("b", self.key, rank))
            return skip
        self._record_mark(i + skip)
        marks = self.history
        if len(marks) >= 3 and marks[-1].idx == marks[-3].idx:
            # Host marks collapsed: an async loop enqueued three iterations
            # inside one timer window, so host-side marks can never cut the
            # timeline.  Hand the job to device-order markers when the
            # caller gave us its stream; otherwise disable loudly so the
            # run reports why replay never engaged.
            self.device_mode = True
            self.history.clear()
            self.keep = None
            rt._update_keep()
            self._enqueue_marker(rank, i + skip, n, stream)
            return skip
        if (skip == 0 and self.replay_safe and n is not None
                and len(marks) >= 2 * self.min_period + 1):
            skip += self._try_replay(n)
        self._trim_ring()
        return skip

    def _record_mark(self, i: int) -> None:
        """Append one reference-rank mark cut at the current ring position."""
        rt = self.rt
        eng = rt.engine
        metrics = eng.metrics
        cur = rt._cur
        m = len(cur.items)
        cur.items.append(("b", self.key, self.ref_rank))
        self.history.append(_Mark(
            i, rt._abs, m, rt._order, rt.n_enq, rt.n_comp, rt.n_spawn,
            dict(eng._name_seqs),
            dict(metrics._counters) if metrics.enabled else {},
            {k: (h.count, h.sum, dict(h.buckets))
             for k, h in metrics._histograms.items()} if metrics.enabled else {},
        ))

    def _trim_ring(self) -> None:
        # Ring housekeeping: everything older than the oldest mark the
        # detector can still use is dead weight.
        marks = self.history
        if marks:
            lo = marks[-(2 * _MAX_D + 1)] if len(marks) > 2 * _MAX_D + 1 else marks[0]
            self.keep = lo.idx
            self.rt._update_keep()

    # ------------------------------------------------------------------ #
    # Device-mark mode.
    # ------------------------------------------------------------------ #

    def _enqueue_marker(self, rank: int, i: int, n: Optional[int],
                        stream) -> None:
        """Queue a silent boundary marker on the rank's stream."""
        rt = self.rt
        if stream is None:
            # No stream to carry device marks: collapse is unrecoverable.
            rt.disable(f"boundary-collapse:{self.key}")
            return
        self.streams[rank] = stream
        if n is not None:
            self.n_total = n
        stream.enqueue(_BoundaryOp(rt.engine, self, rank, i))

    def _device_mark(self, op: _BoundaryOp) -> None:
        """A marker reached the head of its stream: record in device order."""
        rt = self.rt
        if op.rank != self.ref_rank:
            rt._cur.items.append(("b", self.key, op.rank))
            return
        self._record_mark(op.i)
        marks = self.history
        if len(marks) >= 3 and marks[-1].idx == marks[-3].idx:
            # Even device-order marks collapse (a zero-event loop body):
            # there is no third timeline to fall back to.
            rt.disable(f"boundary-collapse:{self.key}")
            return
        if (self.replay_safe and self.n_total is not None
                and len(marks) >= 2 * self.min_period + 1):
            self._try_replay(self.n_total)
        self._trim_ring()

    # ------------------------------------------------------------------ #

    def _try_replay(self, n: int) -> int:
        # Three consecutive bit-identical periods (four marks) gate the
        # takeover.  Two would admit replay while the timeline is still
        # settling: early iterations carry decaying queueing and ULP-level
        # rounding wobble that can repeat once by coincidence, and a replay
        # admitted there extrapolates delays live would not reproduce.
        marks = self.history
        d = self.min_period
        while d <= _MAX_D and len(marks) >= 3 * d + 1:
            m3, m2, m1, m0 = (marks[-1], marks[-1 - d],
                              marks[-1 - 2 * d], marks[-1 - 3 * d])
            if (m3.i - m2.i == d and m2.i - m1.i == d and m1.i - m0.i == d
                    and self._verify(m0, m1, m2)
                    and self._verify(m1, m2, m3)):
                return self._takeover(m1, m2, m3, d, n)
            d += 1
        return 0

    def _verify(self, m0: _Mark, m1: _Mark, m2: _Mark) -> bool:
        """Are the periods (b0, b1] and (b1, b2] structurally identical?"""
        rt = self.rt
        b0, b1, b2 = m0.idx, m1.idx, m2.idx
        L = b1 - b0
        if L <= 0 or b2 - b1 != L or b0 < rt._base:
            return rt._bail("structure")
        if not (m0.item_idx == m1.item_idx == m2.item_idx
                and m0.order == m1.order == m2.order):
            return rt._bail("marker-shape")
        # Stream/spawn balance: an enqueue-ahead imbalance or a task spawn
        # means the period is not self-contained.  In device-mark mode the
        # host enqueued the whole loop up front, so only the per-period
        # *deltas* must repeat (enqueues are all behind us, completions
        # drain at a steady per-period rate); the live enq==comp cross
        # check would always fail there.
        if (m1.enq - m0.enq != m2.enq - m1.enq
                or m1.comp - m0.comp != m2.comp - m1.comp
                or (not self.device_mode
                    and m2.enq - m1.enq != m2.comp - m1.comp)):
            return rt._bail("stream-imbalance")
        if m1.spawn != m0.spawn or m2.spawn != m1.spawn:
            return rt._bail("task-spawn")
        if rt._congestion >= b0 and not rt.congestion_safe:
            # Queued transfers leave absolute busy_until anchors on links.
            # With a registered link shifter (congestion_safe) those anchors
            # translate exactly by the takeover span, and the queueing delays
            # themselves are already encoded in the verified entry delays —
            # periodic congestion extrapolates exactly.  Without a shifter,
            # stay conservative and fall back to live execution.
            return rt._bail("congestion")
        ents, base = rt._entries, rt._base
        m = m2.item_idx
        for k in range(1, L + 1):
            ea = ents[b0 + k - base]
            eb = ents[b1 + k - base]
            if (ea.parent - b0 != eb.parent - b1 or ea.delay != eb.delay
                    or ea.order != eb.order):
                return rt._bail("structure")
            # Device marks fire mid-callback: the entry holding the newest
            # mark hasn't reached on_fired yet, so its cb_end is still
            # unset.  Like the head-only items compare below, skip the
            # cb_end check for that one still-open entry.
            if ea.cb_end != eb.cb_end and not (
                    k == L and self.device_mode and b2 == rt._abs):
                return rt._bail("structure")
            # Replay resolves fire times from a two-period rolling window;
            # a timer chained from further back cannot be re-timed.
            if eb.parent < b0 + 1:
                return rt._bail("long-chain")
            # k == L compares win(b1) vs the current partial window win(b2):
            # heads only (win(b2) ends at the marker just appended).
            hi = None if k < L else m + 1
            if not _items_equal(ea.items, eb.items, hi=hi):
                return rt._bail("structure")
        # Tails after the marker (the segment replay re-emits per period).
        if not _items_equal(ents[b0 - base].items, ents[b1 - base].items,
                            lo=m + 1):
            return rt._bail("structure")
        return True

    def _takeover(self, m0: _Mark, m1: _Mark, m2: _Mark, d: int, n: int) -> int:
        """Validate the frontier, then replay K periods in one fused pass.

        Every check runs before any mutation: a veto leaves the live run
        untouched.
        """
        rt = self.rt
        eng = rt.engine
        b0, b1, b2 = m0.idx, m1.idx, m2.idx
        L = b1 - b0
        m, m_ord = m2.item_idx, m2.order
        ents, base = rt._entries, rt._base
        if eng._ready:
            return rt._bail_int("ready-queue")
        if eng.watchdog_timeout is not None:
            return rt._bail_int("watchdog")
        k0 = _lcm(d, self.parity) // d
        if self.device_mode:
            # The host already enqueued the whole loop; replay can only
            # cover iterations whose ops sit fully queued on *every*
            # attached stream.  Advancing a stream K periods must pop
            # exactly K periods' worth of queue *items*: popping by marker
            # count alone would strand each stream's partial-iteration
            # phase, re-running body ops whose effects the replay already
            # applied (and double-registering their P2P matches).
            qinfo = []
            K = None
            for s in self.streams.values():
                pos = [j for j, qop in enumerate(s._queue)
                       if qop.__class__ is _BoundaryOp]
                if len(pos) < d + 1:
                    return rt._bail_int("tail-too-short")
                span = pos[d] - pos[0]  # queue items per period
                if span <= 0:
                    return rt._bail_int("queue-shape")
                k_s = (len(pos) - 1) // d
                K = k_s if K is None else min(K, k_s)
                qinfo.append((s, pos, span))
            if K is None:
                K = 0
        else:
            K = (n - 1 - max(self.last_i.values())) // d
        K -= K % k0
        if K < k0:
            return rt._bail_int("tail-too-short")
        # --- binade clamp -----------------------------------------------
        # Live delay chains are float-translation-invariant only while the
        # virtual clock stays inside one power-of-two binade: ulp(now) is
        # constant there, so every add rounds identically period after
        # period (which is also why the verified periods matched bit for
        # bit).  Crossing into the next binade doubles the grid and
        # perturbs low-bit rounding, so extrapolated times would drift from
        # live by ULPs right after the boundary.  Clamp the replay to end
        # two periods short of the edge; live iterations carry the run
        # across it and replay re-engages after fresh verification.
        w0 = ents[b0 - base].when
        w1 = ents[b1 - base].when
        w2 = ents[b2 - base].when
        period_dt = w2 - w1
        if w0 <= 0.0 or period_dt <= 0.0:
            return rt._bail_int("binade")
        edge = ldexp(1.0, frexp(w0)[1])  # top of w0's binade
        k_edge = int((edge - w2) / period_dt) - 2
        if k_edge < K:
            K = k_edge - k_edge % k0 if k_edge >= k0 else 0
            if K < k0:
                return rt._bail_int("binade")
        if self.device_mode:
            # Queue layout must actually be periodic over the popped range:
            # marker K*d+1 sits exactly K periods of items past marker 1.
            for s, pos, span in qinfo:
                if pos[K * d] - pos[0] != K * span:
                    return rt._bail_int("queue-shape")
        # --- frozen frontier --------------------------------------------
        frozen = sorted(eng._heap)  # exact pop order: (when, seq, Timer)
        for _, _, t in frozen:
            if t.cancelled:
                return rt._bail_int("cancelled-timer")
            tag = t.cap
            if tag is None:
                return rt._bail_int("untagged-timer")
            p, _, order = tag
            if p < b1 or (p == b1 and order < m_ord):
                return rt._bail_int("stale-frontier")
        # Template lookup: the entry that fired this schedule's previous-
        # period copy tells the frontier timer its slot and freshen set.
        tmpl: Dict[tuple, int] = {}
        for k in range(L):
            e = ents[b1 + 1 + k - base]
            tmpl[(e.parent + L, e.delay, e.order)] = k
        slots = []
        for _, _, t in frozen:
            slot = tmpl.get(t.cap)
            if slot is None:
                return rt._bail_int("frontier-mismatch")
            slots.append(slot)
        # Schedule multiset: everything the template period scheduled must
        # have either fired inside the period or still be pending.
        expected: Counter = Counter()

        def count_sched(widx: int, lo: int, hi: Optional[int]) -> None:
            for it in ents[widx - base].items[lo:hi]:
                if it[0] == "s":
                    expected[(widx, it[1], it[2])] += 1

        count_sched(b1, m + 1, None)
        for w in range(b1 + 1, b2):
            count_sched(w, 0, None)
        count_sched(b2, 0, m + 1)
        seen: Counter = Counter(t.cap for _, _, t in frozen)
        for j in range(b1 + 1, b2 + 1):
            e = ents[j - base]
            if e.parent > b1 or (e.parent == b1 and e.order >= m_ord):
                seen[(e.parent, e.delay, e.order)] += 1
        if expected != seen:
            return rt._bail_int("schedule-multiset")

        # --- commit: fused replay ---------------------------------------
        S = K * d
        t_host0 = perf_counter()
        now0 = eng.now
        hook = eng.trace_hook
        template = [ents[b1 + 1 + k - base] for k in range(L)]
        head = ents[b1 - base].items[: m + 1]
        tail = ents[b1 - base].items[m + 1:]
        _emit(hook, eng.now, tail)
        prevt = [e.when for e in template]
        curt = [0.0] * L
        if hook is None:
            # Untraced fast lane: nothing reads the clock mid-replay and
            # record items are dead weight, so run the bare fire-time
            # recurrence over pre-extracted effect closures only.
            rs = [(b1 + 1 + k) - template[k].parent for k in range(L)]
            delays = [e.delay for e in template]
            fxs = [[it[2] for it in e.items if it[0] == "e"] for e in template]
            fxs[L - 1] = [it[2] for it in head if it[0] == "e"]
            tail_fx = [it[2] for it in tail if it[0] == "e"]
            for period in range(K):
                for k in range(L):
                    r = rs[k]
                    t = (curt[k - r] if r <= k else prevt[k - r + L]) + delays[k]
                    curt[k] = t
                    for fn in fxs[k]:
                        fn()
                if period != K - 1:
                    for fn in tail_fx:
                        fn()
                prevt, curt = curt, prevt
            eng.now = prevt[L - 1]
        else:
            for period in range(K):
                final = period == K - 1
                for k in range(L):
                    e = template[k]
                    r = (b1 + 1 + k) - e.parent
                    t = (curt[k - r] if r <= k else prevt[k - r + L]) + e.delay
                    curt[k] = t
                    eng.now = t
                    if k < L - 1:
                        _emit(hook, t, e.items)
                    elif final:
                        _emit(hook, t, head)
                    else:
                        _emit(hook, t, head)
                        _emit(hook, t, tail)
                prevt, curt = curt, prevt
        end_times = prevt  # swapped: times of the final period
        # --- deferred host-busy debts ------------------------------------
        # Tasks did not run during the replayed span, so each one's absolute
        # ``busy_until`` anchor (written the last time it executed, before
        # it blocked) is stale by exactly the span the clock jumped.  The
        # live run would have re-accrued the same debt one span later, so
        # translate every task's anchor forward — a long-settled debt stays
        # settled (the task's logical position advances by the same span),
        # while an unsettled one makes the first post-replay wake schedule
        # its catch-up (``busy_until - now`` in Engine.block) at the exact
        # virtual time live would have.
        span = end_times[L - 1] - ents[b2 - base].when
        for task in eng._tasks:
            task.busy_until += span
        # Backends with their own absolute anchors (queued eager sends'
        # arrival times, link occupancy) registered shifters at build time.
        for shift in eng.time_shift_hooks:
            shift(span)
        # --- re-time the frontier ---------------------------------------
        # In place, never rebound: a device-mark takeover runs inside a
        # timer callback, and Engine._select_next holds a local reference
        # to the heap across that callback.
        del eng._heap[:]
        KL = K * L
        for (_, _, t), slot in zip(frozen, slots):
            p, delay, order = t.cap
            base_t = end_times[p - b1 - 1] if p > b1 else curt[L - 1]
            t.when = base_t + delay
            t.cap = (p + KL, delay, order)
            te = template[slot]
            fresh = [it[2] for it in te.items[: te.cb_end]
                     if it[0] == "e" and it[3]]
            if fresh:
                t.callback = _freshened(t.callback, fresh)
            eng._seq += 1
            heapq.heappush(eng._heap, (t.when, eng._seq, t))
        # --- name sequences and metrics ---------------------------------
        for kind, v2 in m2.seqs.items():
            delta = v2 - m1.seqs.get(kind, 0)
            if delta:
                eng._name_seqs[kind] = eng._name_seqs.get(kind, 0) + delta * K
        if eng.metrics.enabled:
            _apply_metric_deltas(eng.metrics, m1, m2, K)
        # --- reseed the ring at the far side of the replayed span --------
        e2 = ents[b2 - base]
        seed = _Entry(end_times[L - 1], e2.parent + KL, e2.delay, e2.order)
        seed.items = list(head)
        seed.cb_end = e2.cb_end
        rt._entries = [seed]
        rt._base = rt._abs = b2 + KL
        rt._cur = seed
        rt._order = m_ord
        self.history.clear()
        self.keep = None
        if self.device_mode:
            # The replayed iterations' ops are already sitting in the
            # stream queues — the host enqueued them long ago.  Fast-forward
            # every attached queue by exactly K periods of items, keeping
            # its partial-iteration phase offset intact: the popped ops
            # never run — the template effects just re-applied their data —
            # and their ``done`` events release so nothing can hang on
            # them.  Each stream's in-flight op was re-timed with the
            # frontier above and stands in for its counterpart S
            # iterations later.
            for s, _pos, span in qinfo:
                q = s._queue
                for _ in range(K * span):
                    q.popleft().done.set()
            rt.device_replays += 1
        else:
            for rank in self.last_i:
                self.last_i[rank] += S
                if rank != self.ref_rank:
                    self.pending[rank] = S
        rt.replays += 1
        rt.events_replayed += KL
        rt.iterations_skipped += S
        rt.replay_host_seconds += perf_counter() - t_host0
        return S


def _items_equal(a: List[tuple], b: List[tuple], lo: int = 0,
                 hi: Optional[int] = None) -> bool:
    """Window-item equality over a slice; effect closures compare by key."""
    sa = a[lo:hi]
    sb = b[lo:hi]
    if len(sa) != len(sb):
        return False
    for x, y in zip(sa, sb):
        if x[0] != y[0]:
            return False
        if x[0] == "e":
            if x[1] != y[1]:
                return False
        elif x != y:
            return False
    return True


def _emit(hook, t: float, items: List[tuple]) -> None:
    """Re-emit one window: trace records verbatim, payload effects live."""
    for it in items:
        tag = it[0]
        if tag == "e":
            it[2]()
        elif tag == "r" and hook is not None:
            hook(it[1], t=t, **dict(it[2]))


def _freshened(callback: Callable[[], None], fns: List[Callable[[], None]]):
    """Wrap a frontier callback to overwrite its stale payload delivery
    with the template's freshly re-snapshotted data."""
    def run() -> None:
        callback()
        for fn in fns:
            fn()
    return run


def _apply_metric_deltas(metrics, m1: _Mark, m2: _Mark, K: int) -> None:
    """Apply one period's metric delta K times (counters exactly;
    histogram float sums arithmetically, looped to mirror live order)."""
    counters = metrics._counters
    for key, v2 in m2.counters.items():
        delta = v2 - m1.counters.get(key, 0)
        if delta:
            for _ in range(K):
                counters[key] = counters.get(key, 0) + delta
    hists = metrics._histograms
    for key, (c2, s2, b2) in m2.hists.items():
        c1, s1, b1 = m1.hists.get(key, (0, 0.0, {}))
        hist = hists[key]
        hist.count += (c2 - c1) * K
        ds = s2 - s1
        for _ in range(K):
            hist.sum += ds
        for label, n2 in b2.items():
            dn = n2 - b1.get(label, 0)
            if dn:
                hist.buckets[label] = hist.buckets.get(label, 0) + dn * K


class CaptureRuntime:
    """Per-engine capture state: the entry ring, regions and counters.

    Installed on ``Engine.capture`` by the launcher when
    ``launch(capture=...)`` asks for it; ``None`` (the default) keeps
    every engine hook at one attribute check.
    """

    def __init__(self, engine, mode: str = "auto"):
        if mode not in ("auto", "regions"):
            raise ValueError(f"capture mode {mode!r}: expected 'auto' or 'regions'")
        self.engine = engine
        self.mode = mode
        self.disabled: Optional[str] = None
        root = _Entry(0.0, -1, 0.0, -1)
        self._entries: List[_Entry] = [root]
        self._base = 0      # absolute index of _entries[0]
        self._abs = 0       # absolute index of the current window
        self._cur = root
        self._order = 0
        self._keep: Optional[int] = None
        self._congestion = -1  # last entry index that saw link queueing
        # True once the launcher registers a cluster-link busy_until
        # shifter into engine.time_shift_hooks; lets _verify accept
        # periodic link congestion instead of bailing out.
        self.congestion_safe = False
        self.n_enq = 0
        self.n_comp = 0
        self.n_spawn = 0
        self.regions: Dict[str, CaptureRegion] = {}
        self.replays = 0
        self.device_replays = 0
        self.events_replayed = 0
        self.iterations_skipped = 0
        self.replay_host_seconds = 0.0
        self.bailouts: Counter = Counter()
        self._auto: Dict[Any, list] = {}
        self._auto_detected: set = set()

    # ------------------------------------------------------------------ #
    # Engine hooks (hot path).
    # ------------------------------------------------------------------ #

    def on_fire(self, timer) -> None:
        tag = timer.cap
        if tag is not None:
            e = _Entry(self.engine.now, tag[0], tag[1], tag[2])
        else:
            e = _Entry(self.engine.now, -1, 0.0, -1)
        self._abs += 1
        self._entries.append(e)
        self._cur = e
        self._order = 0
        if len(self._entries) >= _RING_PRUNE:
            self._prune()

    def on_fired(self) -> None:
        self._cur.cb_end = len(self._cur.items)

    def on_schedule(self, timer, delay: float) -> None:
        o = self._order
        self._order = o + 1
        timer.cap = (self._abs, delay, o)
        self._cur.items.append(("s", delay, o))

    def on_record(self, kind: str, fields: Dict[str, Any]) -> None:
        # Keep the caller's kwargs order: re-emitted records must serialize
        # byte-identically to the live hook call (dict order is part of the
        # JSON trace), and the emitting code path is deterministic anyway.
        self._cur.items.append(("r", kind, tuple(fields.items())))

    def effect(self, key: tuple, fn: Callable[[], None],
               freshen: bool = False) -> None:
        """Register one payload effect (a replay-runnable closure)."""
        self._cur.items.append(("e", key, fn, freshen))

    def on_reserve(self, transfer) -> None:
        """Link congestion marker: queued transfers veto nearby replay."""
        if transfer.start != self.engine.now:
            self._congestion = self._abs

    # ------------------------------------------------------------------ #

    def region(self, name: str, *, replay_safe: bool = True, parity: int = 1,
               min_period: int = 1) -> CaptureRegion:
        """Create-once lookup of the named region."""
        reg = self.regions.get(name)
        if reg is None:
            reg = self.regions[name] = CaptureRegion(
                self, name, replay_safe, parity, min_period
            )
        return reg

    def auto_tick(self, key: Any) -> None:
        """Stride detector for unannotated loops (mode ``"auto"``).

        Purely diagnostic: replay needs the loop's cooperation (it must
        consume skipped iterations), so unannotated loops are reported in
        ``auto_detected_loops`` rather than replayed.
        """
        if self.mode != "auto" or key in self._auto_detected:
            return
        idx = self._abs
        rec = self._auto.get(key)
        if rec is None:
            self._auto[key] = [idx, 0, 0]
            return
        stride = idx - rec[0]
        if stride > 0 and stride == rec[1]:
            rec[2] += 1
            if rec[2] >= 3:
                self._auto_detected.add(key)
        else:
            rec[1], rec[2] = stride, 0
        rec[0] = idx

    def disable(self, reason: str) -> None:
        """Stop capturing (revocation, etc.); recording never resumes."""
        if self.disabled is None:
            self.disabled = reason
            self.engine.capture = None  # detach every hook

    # ------------------------------------------------------------------ #

    def _bail(self, reason: str) -> bool:
        self.bailouts[reason] += 1
        return False

    def _bail_int(self, reason: str) -> int:
        self.bailouts[reason] += 1
        return 0

    def _update_keep(self) -> None:
        keeps = [r.keep for r in self.regions.values() if r.keep is not None]
        self._keep = min(keeps) if keeps else None

    def _prune(self) -> None:
        floor = self._keep if self._keep is not None else self._abs - _RING_SLACK
        drop = floor - self._base
        if drop > 0:
            del self._entries[:drop]
            self._base = floor

    # ------------------------------------------------------------------ #

    def stats_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "enabled": self.disabled is None,
            "disabled": self.disabled,
            "replays": self.replays,
            "device_replays": self.device_replays,
            "events_replayed": self.events_replayed,
            "iterations_skipped": self.iterations_skipped,
            "replay_host_seconds": self.replay_host_seconds,
            "regions": sorted(self.regions),
            "device_mark_regions": sorted(
                k for k, r in self.regions.items() if r.device_mode),
            "bailouts": dict(sorted(self.bailouts.items())),
            "auto_detected_loops": len(self._auto_detected),
        }
