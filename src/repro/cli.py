"""Command-line interface: run the paper's workloads from a shell.

Subcommands::

    python -m repro machines                     # Table I presets
    python -m repro jacobi  --backend gpuccl --gpus 8 --size 512
    python -m repro cg      --backend gpushmem --rows 4096
    python -m repro latency --variant uniconn:mpi --inter
    python -m repro bandwidth --variant gpuccl-native
    python -m repro tune    --machine perlmutter -o table.json
    python -m repro tune    --coll --gpus 64 --dump coll_table.json
    python -m repro trace   --out trace.json     # Chrome-trace of a Jacobi run
    python -m repro report  --gpus 4             # per-rank time breakdown
    python -m repro submit  --sweep app=jacobi,cg backend=mpi,gpuccl --jobs 4
    python -m repro serve   --queue jobs.jsonl   # long-running job service
    python -m repro jobs                         # result-store status table
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (exposed for tests and docs)."""
    p = argparse.ArgumentParser(prog="repro", description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="command", required=True)

    def common(sp):
        sp.add_argument("--machine", default="perlmutter",
                        choices=["perlmutter", "lumi", "marenostrum5"])

    def _fault_args(sp):
        sp.add_argument("--fault-spec", default=None, metavar="SPEC",
                        help="deterministic fault plan (FaultPlan.parse syntax; "
                             "clauses ';'-separated, e.g. "
                             "'down,link=nic-out[0],start=1e-4,end=5e-4;"
                             "crash,rank=1,at=1e-3')")
        sp.add_argument("--fault-seed", type=int, default=0,
                        help="seed for the plan's probabilistic decisions")

    def _sanitize_arg(sp):
        sp.add_argument("--sanitize", nargs="?", const="race", default=None,
                        choices=["race"],
                        help="run under the happens-before sanitizer "
                             "(docs/SANITIZER.md); races make the command "
                             "exit nonzero")

    def _capture_arg(sp):
        sp.add_argument("--capture", default=None,
                        choices=["off", "auto", "regions"],
                        help="graph capture & replay for steady-state loops "
                             "(docs/MODEL.md); replay counters are printed "
                             "after the run")

    sp = sub.add_parser("machines", help="print the Table I machine models")

    sp = sub.add_parser(
        "jacobi", help="run the Jacobi 2D solver",
        epilog="Fault injection (see docs/FAULTS.md): --fault-spec installs a "
               "deterministic fault plan, e.g. "
               "'drop,tag=0,start=1e-4,end=3e-4' for a transient message "
               "outage; --resilient runs the checkpoint/rollback variant "
               "that survives it. A worked example lives in "
               "examples/jacobi_fault_recovery.py.")
    common(sp)
    sp.add_argument("--backend", default="gpuccl")
    sp.add_argument("--mode", default="PureHost",
                    choices=["PureHost", "PartialDevice", "PureDevice"])
    sp.add_argument("--gpus", type=int, default=8)
    sp.add_argument("--size", type=int, default=256, help="grid edge (nx)")
    sp.add_argument("--iters", type=int, default=20)
    sp.add_argument("--verify", action="store_true")
    _fault_args(sp)
    sp.add_argument("--resilient", action="store_true",
                    help="run the fault-tolerant mpi-resilient variant "
                         "(checkpoint + rollback; ignores --backend/--mode)")
    sp.add_argument("--checkpoint-every", type=int, default=8,
                    help="iterations between in-memory checkpoints (--resilient)")
    _sanitize_arg(sp)
    _capture_arg(sp)

    sp = sub.add_parser("cg", help="run the Conjugate Gradient solver")
    common(sp)
    sp.add_argument("--backend", default="gpuccl")
    sp.add_argument("--rows", type=int, default=4096)
    sp.add_argument("--nnz", type=int, default=33)
    sp.add_argument("--gpus", type=int, default=8)
    sp.add_argument("--iters", type=int, default=30)
    _sanitize_arg(sp)
    _capture_arg(sp)

    for name in ("latency", "bandwidth"):
        sp = sub.add_parser(name, help=f"OSU-style {name} benchmark (2 GPUs)")
        common(sp)
        sp.add_argument("--variant", default="uniconn:gpuccl")
        sp.add_argument("--inter", action="store_true", help="use two nodes")
        sp.add_argument("--sizes", type=int, nargs="*", default=None)

    sp = sub.add_parser(
        "tune", help="build a backend-selection or collective-algorithm table",
        epilog="Default: probe backend crossovers (core.selection). With "
               "--coll, score the repro.coll algorithm catalogue with the "
               "alpha-beta cost model instead and print per-backend "
               "collective crossovers; --dump writes the banded tuning "
               "table (schema repro.coll.table) for launch(coll=...) or "
               "the REPRO_COLL_TABLE environment variable.")
    common(sp)
    sp.add_argument("-o", "--output", default=None, help="write table JSON here")
    sp.add_argument("--coll", action="store_true",
                    help="tune collective algorithms (docs/COLLECTIVES.md)")
    sp.add_argument("--gpus", type=int, default=64,
                    help="job size the collective table is tuned for")
    sp.add_argument("--nodes", type=int, default=None,
                    help="node count (default: ceil(gpus / gpus_per_node))")
    sp.add_argument("--dump", default=None, metavar="FILE",
                    help="write the collective tuning table JSON here")

    sp = sub.add_parser("trace", help="write a Chrome trace of a Jacobi run")
    common(sp)
    sp.add_argument("--backend", default="gpuccl")
    sp.add_argument("--gpus", type=int, default=4)
    sp.add_argument("--out", default="trace.json")
    _fault_args(sp)
    _sanitize_arg(sp)

    sp = sub.add_parser(
        "report", help="run a Jacobi job with span tracing and print the "
                       "per-rank compute/comm/sync/idle breakdown",
        epilog="The analysis (docs/OBSERVABILITY.md) runs at obs level "
               "'spans'; --metrics-out writes the full report document "
               "(schema repro.obs.report) as JSON for tooling.")
    common(sp)
    sp.add_argument("--backend", default="gpuccl")
    sp.add_argument("--mode", default="PureHost",
                    choices=["PureHost", "PartialDevice", "PureDevice"])
    sp.add_argument("--gpus", type=int, default=4)
    sp.add_argument("--size", type=int, default=128, help="grid edge (nx)")
    sp.add_argument("--iters", type=int, default=10)
    sp.add_argument("--metrics-out", default=None, metavar="FILE",
                    help="write the JSON report document here")
    sp.add_argument("--trace-out", default=None, metavar="FILE",
                    help="also write the Chrome trace (with spans) here")
    _fault_args(sp)
    _sanitize_arg(sp)

    # ---------------- repro.serve: the job-queue service ---------------- #

    def _service_args(sp):
        sp.add_argument("--store", default=None, metavar="PATH",
                        help="result-store root (default: $REPRO_SERVE_STORE "
                             "or ~/.cache/repro-serve)")
        sp.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (default: all cores)")
        sp.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-job wall-clock limit in seconds")
        sp.add_argument("--retries", type=int, default=1,
                        help="re-attempts after a failed/crashed/timed-out "
                             "job (default 1)")
        sp.add_argument("--quiet", action="store_true",
                        help="suppress per-job progress events")

    def _spec_args(sp):
        sp.add_argument("--app", default="jacobi",
                        choices=["jacobi", "cg", "latency", "bandwidth"])
        sp.add_argument("--backend", default="mpi")
        sp.add_argument("--mode", default="PureHost",
                        choices=["PureHost", "PartialDevice", "PureDevice"])
        sp.add_argument("--gpus", type=int, default=4)
        sp.add_argument("--size", type=int, default=64,
                        help="grid edge (jacobi) / rows (cg) / max bytes (osu)")
        sp.add_argument("--iters", type=int, default=8)
        sp.add_argument("--seed", type=int, default=0,
                        help="problem seed (cg matrix)")
        sp.add_argument("--coll", default=None,
                        help="collective policy: auto, an algorithm, or a "
                             "wire selection like ring+LL/2")
        sp.add_argument("--collect", action="store_true",
                        help="include a solution digest in the summary")
        _fault_args(sp)
        _sanitize_arg(sp)
        _capture_arg(sp)

    sp = sub.add_parser(
        "submit", help="submit simulation jobs through the cached job service",
        epilog="One spec comes from the flags; --sweep expands a matrix over "
               "them, e.g. --sweep app=jacobi,cg backend=mpi,gpuccl size=32,64 "
               "runs the 8-point cross product. Results are config-hash "
               "cached (docs/SERVE.md): resubmitting a matrix serves every "
               "duplicate from the store, bit-identical to the fresh run.")
    common(sp)
    _spec_args(sp)
    _service_args(sp)
    sp.add_argument("--sweep", nargs="+", default=None, metavar="AXIS=V1,V2",
                    help="expand a job matrix over the base spec")
    sp.add_argument("--json", default=None, metavar="FILE",
                    help="write the batch's result documents here")

    sp = sub.add_parser(
        "serve", help="long-running job service consuming a JSONL queue",
        epilog="Each queue line is a JobSpec object or {\"sweep\": {...}, "
               "\"defaults\": {...}}. The loop tails the file (or FIFO) "
               "and executes new lines as they arrive; --once drains the "
               "current content and exits (the CI smoke mode).")
    _service_args(sp)
    sp.add_argument("--queue", required=True, metavar="PATH",
                    help="JSONL job file or FIFO to consume")
    sp.add_argument("--once", action="store_true",
                    help="drain what is currently readable, then exit")
    sp.add_argument("--poll", type=float, default=0.5, metavar="S",
                    help="poll interval while tailing (default 0.5s)")

    sp = sub.add_parser(
        "jobs", help="table of job statuses from the result store")
    sp.add_argument("--store", default=None, metavar="PATH",
                    help="result-store root (default: $REPRO_SERVE_STORE "
                         "or ~/.cache/repro-serve)")
    sp.add_argument("--failed", action="store_true",
                    help="show only failed jobs")
    return p


def _print_capture(report, out) -> None:
    """Print the graph-capture summary when capture was requested."""
    cap = report.stats.get("capture")
    if not cap or cap.get("mode", "off") == "off":
        return
    if not cap.get("enabled", False):
        print(f"capture: disabled ({cap.get('disabled')})", file=out)
        return
    print(f"capture[{cap['mode']}]: {cap['replays']} replay(s), "
          f"{cap['iterations_skipped']} iteration(s) skipped, "
          f"{cap['events_replayed']} events replayed", file=out)


def _print_races(report, out) -> int:
    """Print sanitizer findings; returns the count (nonzero exit signal)."""
    races = getattr(report, "races", [])
    if not races:
        if report.stats.get("races") is not None:
            print("sanitizer: no races detected", file=out)
        return 0
    print(f"sanitizer: {len(races)} finding(s)", file=out)
    for r in races:
        for line in str(r).splitlines():
            print(f"  {line}", file=out)
    dropped = report.stats.get("races_dropped", 0)
    if dropped:
        print(f"  ... and {dropped} more (report cap reached)", file=out)
    return len(races)


def _cmd_machines(args, out) -> int:
    from .hardware import MACHINES, get_machine

    for name in sorted(MACHINES):
        m = get_machine(name)
        print(f"{name:14s} {m.gpus_per_node}x {m.gpu.name:24s} "
              f"intra {m.intra_bandwidth / 1e9:6.1f} GB/s  "
              f"NIC {m.nic_bandwidth / 1e9:5.1f} GB/s  "
              f"GPUSHMEM {'yes' if m.has_gpushmem() else 'N/A'}", file=out)
    return 0


def _cmd_jacobi(args, out) -> int:
    from .apps.jacobi import JacobiConfig, assemble, launch_variant, serial_jacobi
    from .apps.jacobi import resilient
    from .launcher import launch

    cfg = JacobiConfig(nx=args.size, ny=args.size + 2, iters=args.iters,
                       warmup=max(1, args.iters // 10))
    if args.resilient:
        variant = "mpi-resilient"
        results = launch(resilient.run, args.gpus, machine=args.machine,
                         args=(cfg, args.verify, args.checkpoint_every),
                         fault_plan=args.fault_spec, fault_seed=args.fault_seed,
                         sanitize=args.sanitize)
    else:
        variant = f"uniconn:{args.backend}" + ("" if args.mode == "PureHost" else f":{args.mode}")
        results = launch_variant(variant, cfg, args.gpus, machine=args.machine,
                                 collect=args.verify,
                                 fault_plan=args.fault_spec, fault_seed=args.fault_seed,
                                 sanitize=args.sanitize, capture=args.capture)
    t = max(r.time_per_iter for r in results)
    print(f"jacobi {cfg.nx}x{cfg.ny} x{args.gpus} GPUs [{variant}] on {args.machine}: "
          f"{t * 1e6:.2f} us/iter", file=out)
    _print_capture(results, out)
    for when, kind, fields in results.faults:
        detail = " ".join(f"{k}={v}" for k, v in fields.items())
        print(f"  fault t={when:.6g}s {kind} {detail}", file=out)
    restarts = max((getattr(r, "restarts", 0) for r in results), default=0)
    if restarts:
        print(f"  recovered via {restarts} checkpoint rollback(s)", file=out)
    races = _print_races(results, out)
    if args.verify:
        ref = serial_jacobi(cfg, iters=cfg.warmup + cfg.iters)
        ok = np.array_equal(assemble(cfg, results), ref)
        print(f"verification: {'PASS (bitwise)' if ok else 'FAIL'}", file=out)
        return 1 if (not ok or races) else 0
    return 1 if races else 0


def _cmd_cg(args, out) -> int:
    from .apps.cg import CgConfig, assemble_x, final_residual, launch_variant, make_problem

    cfg = CgConfig(n=args.rows, nnz_per_row=args.nnz, iters=args.iters)
    problem = make_problem(cfg)
    results = launch_variant(f"uniconn:{args.backend}", cfg, args.gpus,
                             machine=args.machine, problem=problem, collect=True,
                             sanitize=args.sanitize, capture=args.capture)
    x = assemble_x(results, cfg.n)
    rel = final_residual(problem, x) / float(np.linalg.norm(problem.b))
    t = max(r.time_per_iter for r in results)
    print(f"cg n={cfg.n} x{args.gpus} GPUs [uniconn:{args.backend}] on {args.machine}: "
          f"{t * 1e6:.2f} us/iter, |b-Ax|/|b| = {rel:.2e}", file=out)
    _print_capture(results, out)
    return 1 if _print_races(results, out) else 0


def _cmd_netbench(args, out, kind: str) -> int:
    from .apps.osu import OsuConfig, run_bandwidth, run_latency

    sizes = tuple(args.sizes) if args.sizes else (8, 1024, 65536, 1 << 20)
    cfg = OsuConfig(sizes=sizes, iters_small=20, warmup_small=2,
                    iters_large=6, warmup_large=1, repeats=3)
    run = run_latency if kind == "latency" else run_bandwidth
    res = run(args.variant, cfg, machine=args.machine, inter_node=args.inter)
    where = "inter" if args.inter else "intra"
    for size in sizes:
        if kind == "latency":
            print(f"{size:>10d} B   {res[size] * 1e6:10.2f} us", file=out)
        else:
            print(f"{size:>10d} B   {res[size] / 1e9:10.2f} GB/s", file=out)
    print(f"[{args.variant}, {where}-node, {args.machine}]", file=out)
    return 0


def _cmd_tune_coll(args, out) -> int:
    from .coll import CollTuner, validate_table

    tuner = CollTuner(args.machine, args.gpus, n_nodes=args.nodes)
    table = tuner.build_table()
    sig = tuner.topo.signature()
    print(f"collective tuning table for {sig}", file=out)
    for backend in tuner.backends():
        for kind in table.entries[sig][backend]:
            bands = table.entries[sig][backend][kind]
            parts = []
            for ceiling, algo, protocol, channels in bands:
                name = algo
                if protocol is not None:
                    name += f"+{protocol}"
                if channels != 1:
                    name += f"/{channels}"
                parts.append(
                    name + (f" < {ceiling} B" if ceiling is not None else ""))
            print(f"  {backend:9s} {kind:15s} {', '.join(parts)}", file=out)
    dest = args.dump or args.output
    if dest:
        table.save(dest)
        import json

        with open(dest) as fh:
            validate_table(json.load(fh))
        print(f"table written to {dest} (schema valid)", file=out)
    return 0


def _cmd_tune(args, out) -> int:
    if args.coll:
        return _cmd_tune_coll(args, out)
    from .core.selection import SelectionTable

    table = SelectionTable.tune(args.machine, probe_sizes=(8, 512, 32768, 1 << 20), iters=12)
    for inter in (False, True):
        loc = "inter" if inter else "intra"
        for size, winner in table.crossover_sizes(inter_node=inter):
            print(f"{loc:5s} from {size:>8d} B: {winner}", file=out)
    if args.output:
        table.save(args.output)
        print(f"table written to {args.output}", file=out)
    return 0


def _cmd_trace(args, out) -> int:
    from .apps.jacobi import JacobiConfig, run_variant
    from .launcher import launch
    from .sim import Tracer, write_chrome_trace

    tracer = Tracer()
    cfg = JacobiConfig(nx=64, ny=66, iters=5, warmup=1)
    report = launch(lambda ctx: run_variant(ctx, f"uniconn:{args.backend}", cfg),
                    args.gpus, machine=args.machine, tracer=tracer,
                    fault_plan=args.fault_spec, fault_seed=args.fault_seed,
                    sanitize=args.sanitize)
    write_chrome_trace(tracer, args.out)
    print(f"{len(tracer.records)} events -> {args.out} "
          f"(open in chrome://tracing or Perfetto)", file=out)
    return 1 if _print_races(report, out) else 0


def _cmd_report(args, out) -> int:
    from .apps.jacobi import JacobiConfig, launch_variant
    from .obs import SCHEMA_NAME, SCHEMA_VERSION, analyze_records, format_report, validate_report
    from .sim import Tracer

    variant = f"uniconn:{args.backend}" + ("" if args.mode == "PureHost" else f":{args.mode}")
    cfg = JacobiConfig(nx=args.size, ny=args.size + 2, iters=args.iters,
                       warmup=max(1, args.iters // 10))
    tracer = Tracer()
    report = launch_variant(variant, cfg, args.gpus, machine=args.machine,
                            tracer=tracer, obs="spans", trace_out=args.trace_out,
                            fault_plan=args.fault_spec, fault_seed=args.fault_seed,
                            sanitize=args.sanitize)
    analysis = analyze_records(tracer.records, n_ranks=args.gpus,
                               total_time=report.stats.get("virtual_time"))
    print(f"jacobi {cfg.nx}x{cfg.ny} x{args.gpus} GPUs [{variant}] on {args.machine}",
          file=out)
    print(format_report(analysis), file=out)
    races = _print_races(report, out)
    if args.trace_out:
        print(f"chrome trace -> {args.trace_out}", file=out)
    if args.metrics_out:
        import json

        doc = {"schema": SCHEMA_NAME, "version": SCHEMA_VERSION}
        doc.update(analysis.as_dict())
        doc["metrics"] = report.metrics.as_dict()
        doc["stats"] = {k: v for k, v in report.stats.items()
                        if k not in ("faults", "races")}
        doc["faults"] = [
            {"t": when, "kind": kind, "fields": dict(fields)}
            for when, kind, fields in report.faults
        ]
        if args.sanitize:
            doc["races"] = [r.as_dict() for r in report.races]
        validate_report(doc)
        with open(args.metrics_out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report document -> {args.metrics_out}", file=out)
    return 1 if races else 0


def _make_service(args, out):
    """Build a JobService from the shared --store/--jobs/... flags."""
    from .serve import JobService, ResultStore

    def printer(event):
        label = event.get("spec") or event.get("error") or ""
        wall = event.get("wall_s")
        tail = f" ({wall:.2f}s)" if wall is not None else ""
        dedup = " [dedup]" if event.get("dedup") else ""
        print(f"  [{event['event']:>7s}] job {event['job']}"
              f"{dedup} {label}{tail}", file=out)

    store = ResultStore(args.store)
    return JobService(store, jobs=args.jobs, timeout=args.timeout,
                      retries=args.retries,
                      events=None if args.quiet else printer)


def _print_service_summary(svc, n_docs, out) -> None:
    s = svc.summary()
    cache = s["cache"]
    print(f"{n_docs} job(s): {s['jobs']['done']:g} executed, "
          f"{cache['hits']:g} cache hit(s), {s['jobs']['failed']:g} failed, "
          f"{s['retries']:g} retrie(s), "
          f"{s['worker_respawns']:g} worker respawn(s)", file=out)


def _cmd_submit(args, out) -> int:
    from .serve import JobSpec, expand_matrix, parse_sweep

    base = dict(
        app=args.app, backend=args.backend, mode=args.mode,
        machine=args.machine, ranks=args.gpus, size=args.size,
        iters=args.iters, seed=args.seed, fault_spec=args.fault_spec,
        fault_seed=args.fault_seed, coll=args.coll,
        capture=args.capture or "off", sanitize=bool(args.sanitize),
        collect=args.collect,
    )
    if args.sweep:
        axes = parse_sweep(args.sweep)
        # "gpus" is the CLI spelling of the JobSpec "ranks" field.
        axes = {("ranks" if k == "gpus" else k): v for k, v in axes.items()}
        specs = [JobSpec.from_dict({**base, **point})
                 for point in expand_matrix(axes)]
    else:
        specs = [JobSpec.from_dict(base)]
    svc = _make_service(args, out)
    docs = svc.run(specs)
    for spec, doc in zip(specs, docs):
        status = doc.get("status", "?")
        mark = "ok " if status == "done" else "ERR"
        detail = ""
        summary = doc.get("summary") or {}
        if "time_per_iter_s" in summary:
            detail = f"  {summary['time_per_iter_s'] * 1e6:.2f} us/iter"
        elif status == "failed":
            detail = f"  {doc.get('error', '')}"
        print(f"{mark} {spec.short_hash}  {spec.describe()}{detail}", file=out)
    _print_service_summary(svc, len(docs), out)
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(docs, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"result documents -> {args.json}", file=out)
    return 1 if any(d.get("status") != "done" for d in docs) else 0


def _cmd_serve(args, out) -> int:
    svc = _make_service(args, out)
    print(f"serving jobs from {args.queue} "
          f"(store: {svc.store.root}){' [once]' if args.once else ''}",
          file=out)
    try:
        n = svc.serve_loop(args.queue, poll_s=args.poll, once=args.once)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        n = None
        print("interrupted", file=out)
    if n is not None:
        _print_service_summary(svc, n, out)
    return 0


def _cmd_jobs(args, out) -> int:
    from .serve import ResultStore

    store = ResultStore(args.store)
    rows = list(store.jobs())
    if args.failed:
        rows = [r for r in rows if r.get("status") != "done"]
    if not rows:
        print(f"no jobs in store {store.root}", file=out)
        return 0
    print(f"{'hash':12s} {'status':7s} {'wall':>8s} {'attempts':>8s}  job",
          file=out)
    for doc in rows:
        job = doc.get("job", {})
        from .serve import JobSpec

        try:
            label = JobSpec.from_dict(job).describe()
        except (ValueError, TypeError):
            label = repr(job)
        wall = doc.get("wall_s")
        print(f"{doc.get('config_hash', '?')[:12]:12s} "
              f"{doc.get('status', '?'):7s} "
              f"{(f'{wall:.2f}s' if wall is not None else '-'):>8s} "
              f"{doc.get('attempts', 1):>8d}  {label}", file=out)
    print(f"{len(rows)} job(s) in {store.root}", file=out)
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "machines":
        return _cmd_machines(args, out)
    if args.command == "jacobi":
        return _cmd_jacobi(args, out)
    if args.command == "cg":
        return _cmd_cg(args, out)
    if args.command in ("latency", "bandwidth"):
        return _cmd_netbench(args, out, args.command)
    if args.command == "tune":
        return _cmd_tune(args, out)
    if args.command == "trace":
        return _cmd_trace(args, out)
    if args.command == "report":
        return _cmd_report(args, out)
    if args.command == "submit":
        return _cmd_submit(args, out)
    if args.command == "serve":
        return _cmd_serve(args, out)
    if args.command == "jobs":
        return _cmd_jobs(args, out)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover
