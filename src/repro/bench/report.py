"""Plain-text reporting for the benchmark harness.

Each figure/table bench prints the same rows/series the paper plots, plus a
paper-vs-measured shape summary, and dumps the raw numbers as JSON under
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["fmt_size", "fmt_us", "fmt_gbps", "series_table", "save_json", "shape_check", "banner"]


def fmt_size(nbytes: int) -> str:
    """Human-readable byte size (4B, 1KiB, 4MiB, ...)."""
    for unit, scale in (("GiB", 1 << 30), ("MiB", 1 << 20), ("KiB", 1 << 10)):
        if nbytes >= scale:
            val = nbytes / scale
            return f"{val:.0f}{unit}" if val == int(val) else f"{val:.1f}{unit}"
    return f"{nbytes}B"


def fmt_us(seconds: float) -> str:
    """Seconds rendered as microseconds."""
    return f"{seconds * 1e6:.2f}"


def fmt_gbps(bytes_per_s: float) -> str:
    """Bytes/s rendered as GB/s."""
    return f"{bytes_per_s / 1e9:.2f}"


def banner(title: str) -> None:
    """Print a section header."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def series_table(
    row_keys: Sequence,
    series: Mapping[str, Mapping],
    row_fmt=str,
    val_fmt=lambda v: f"{v:.3g}",
    row_header: str = "size",
) -> None:
    """Print one table: rows are message sizes (or GPU counts), columns are
    the variants/series the paper plots as lines."""
    names = list(series)
    widths = [max(len(row_header), 8)] + [max(len(n), 10) for n in names]
    header = "  ".join(h.rjust(w) for h, w in zip([row_header] + names, widths))
    print(header)
    print("-" * len(header))
    for key in row_keys:
        cells = [row_fmt(key).rjust(widths[0])]
        for name, w in zip(names, widths[1:]):
            val = series[name].get(key)
            cells.append(("-" if val is None else val_fmt(val)).rjust(w))
        print("  ".join(cells))


def save_json(name: str, payload) -> str:
    """Write results JSON under benchmarks/results/ (created on demand)."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))))
    out_dir = os.path.join(here, "benchmarks", "results")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"{name}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True, default=str)
    return path


def shape_check(description: str, condition: bool, details: str = "") -> bool:
    """Print and return one qualitative paper-vs-measured check."""
    status = "OK " if condition else "MISS"
    print(f"  [{status}] {description}" + (f"  ({details})" if details else ""))
    return condition
