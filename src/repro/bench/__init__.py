"""Benchmark harness utilities: paper-style timing, sweep running, report
tables, and the SLOC counter for Table II."""

from .report import banner, fmt_gbps, fmt_size, fmt_us, save_json, series_table, shape_check
from .sloc import count_file, count_functions, count_text, table2_cells
from .timing import paper_mean, percent_diff

__all__ = [
    "banner",
    "fmt_gbps",
    "fmt_size",
    "fmt_us",
    "save_json",
    "series_table",
    "shape_check",
    "count_file",
    "count_functions",
    "count_text",
    "table2_cells",
    "paper_mean",
    "percent_diff",
]
