"""Source-lines-of-code counting for Table II.

Counts non-blank, non-comment source lines (docstrings excluded, since they
play the role of C++ comments) — the same methodology the paper applies to
its C++ implementations. Jacobi/CG variants are one file each; the network
benchmarks keep all variants in one module, so those cells count the
per-variant functions via ``inspect``.
"""

from __future__ import annotations

import inspect
import io
import os
import textwrap
import tokenize
from typing import Dict, Iterable, Optional

__all__ = ["count_text", "count_file", "count_functions", "table2_cells"]


def count_text(source: str) -> int:
    """SLOC of a source string: physical lines holding at least one token
    that is not a comment, NL, or docstring."""
    data = source.encode()
    lines_with_code = set()
    prev_toktype = tokenize.INDENT
    for tok in tokenize.tokenize(io.BytesIO(data).readline):
        if tok.type in (tokenize.COMMENT, tokenize.NL, tokenize.NEWLINE,
                        tokenize.ENCODING, tokenize.ENDMARKER, tokenize.INDENT,
                        tokenize.DEDENT):
            prev_toktype = tok.type
            continue
        if tok.type == tokenize.STRING and prev_toktype in (
            tokenize.INDENT, tokenize.DEDENT, tokenize.NEWLINE, tokenize.ENCODING
        ):
            prev_toktype = tok.type
            continue
        for ln in range(tok.start[0], tok.end[0] + 1):
            lines_with_code.add(ln)
        prev_toktype = tok.type
    return len(lines_with_code)


def count_file(path: str) -> int:
    """SLOC of one Python file."""
    with open(path, "r") as fh:
        return count_text(fh.read())


def count_functions(*functions) -> int:
    """Combined SLOC of the given function/kernel objects."""
    total = 0
    for fn in functions:
        obj = getattr(fn, "fn", fn)  # unwrap KernelSpec
        total += count_text(textwrap.dedent(inspect.getsource(obj)))
    return total


def _apps_dir() -> str:
    return os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "apps")


def table2_cells() -> Dict[str, Dict[str, Optional[int]]]:
    """Compute the Table II grid: SLOC per experiment per library."""
    from ..apps.osu import bandwidth as bw, latency as lat

    apps = _apps_dir()

    def f(*parts) -> int:
        return count_file(os.path.join(apps, *parts))

    latency = {
        "MPI": count_functions(lat.latency_mpi_native, lat._measure),
        "GPUCCL": count_functions(lat.latency_gpuccl_native, lat._measure),
        "GPUSHMEM_Device": count_functions(
            lat.latency_gpushmem_device_native, lat._latency_dev_kernel, lat._measure
        ),
        "Uniconn": count_functions(
            lat._latency_uniconn_host, lat._latency_uniconn_device,
            lat._latency_uniconn_dev_kernel, lat._measure,
        ),
    }
    bandwidth = {
        "MPI": count_functions(bw.bandwidth_mpi_native, bw._measure_bw),
        "GPUCCL": count_functions(bw.bandwidth_gpuccl_native, bw._measure_bw),
        "GPUSHMEM_Device": count_functions(
            bw.bandwidth_gpushmem_device_native, bw._bw_dev_kernel, bw._measure_bw
        ),
        "Uniconn": count_functions(bw._bandwidth_uniconn_host, bw._measure_bw),
    }
    jacobi = {
        "MPI": f("jacobi", "native_mpi.py"),
        "GPUCCL": f("jacobi", "native_gpuccl.py"),
        "GPUSHMEM_Host": f("jacobi", "native_gpushmem_host.py"),
        "GPUSHMEM_Device": f("jacobi", "native_gpushmem_device.py"),
        "Uniconn": f("jacobi", "uniconn.py"),
    }
    cg = {
        "MPI": f("cg", "native_mpi.py"),
        "GPUCCL": f("cg", "native_gpuccl.py"),
        "GPUSHMEM_Host": f("cg", "native_gpushmem_host.py"),
        "GPUSHMEM_Device": f("cg", "native_gpushmem_device.py"),
        "Uniconn": f("cg", "uniconn.py"),
    }
    return {"Latency": latency, "Bandwidth": bandwidth, "Jacobi2D": jacobi, "CG": cg}
