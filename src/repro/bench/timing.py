"""The paper's measurement methodology (Section VI-A2).

Each measurement is repeated; the lowest and highest samples are dropped
and the rest averaged. (On the deterministic virtual clock the spread comes
only from carried-over link occupancy, so few repeats suffice; the paper
used ten on real hardware.)
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["paper_mean", "percent_diff"]


def paper_mean(samples: Sequence[float]) -> float:
    """Drop min and max (when there are >= 3 samples), then average."""
    xs = sorted(samples)
    if len(xs) == 0:
        raise ValueError("no samples")
    if len(xs) >= 3:
        xs = xs[1:-1]
    return sum(xs) / len(xs)


def percent_diff(measured: float, reference: float) -> float:
    """(measured - reference) / reference, in percent."""
    if reference == 0:
        raise ValueError("reference time is zero")
    return 100.0 * (measured - reference) / reference
