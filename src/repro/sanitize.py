"""Happens-before race & memory sanitizer for the simulated GPU substrate.

The simulator executes every rank, stream and kernel as cooperative tasks
over one virtual clock, which makes the ordering contracts of the paper's
three backends (stream FIFO order, NCCL group semantics, SHMEM
signal/quiet ordering) mechanically checkable: any two accesses to the
same simulated device memory that are not connected by a happens-before
path could land in either order on real hardware, i.e. they are a data
race even if the simulated schedule happened to produce the right answer.

The sanitizer is strictly opt-in (``launch(..., sanitize="race")`` or the
``--sanitize`` CLI flag). With it off, every hook reduces to a single
``engine.sanitizer is None`` check and the event schedule — and therefore
the trace — is byte-identical to an uninstrumented run.

Model (FastTrack-style epochs over sparse vector clocks):

* An :class:`AccessCtx` is one strand of sequential execution: a simulated
  task, a stream op, or a scheduled callback. Each carries a vector clock
  ``vc`` mapping context ids to ticks; accesses are stamped with the
  context's current epoch ``(id, tick)``.
* Happens-before edges come from the simulation's own synchronization
  primitives: ``SimEvent.set``/``wait``, ``Broadcast.notify_all``/``wait``
  (which underlie stream completion, MPI request completion, SHMEM
  signals, barriers and collectives), task spawn/join, and scheduled
  callbacks (issue happens-before delivery).
* Device buffers keep a bounded shadow history of accesses; a new access
  that overlaps an earlier one of a conflicting kind with no
  happens-before path produces a :class:`RaceReport`.

Access kinds: ``r`` read, ``w`` write, ``rw`` conservative kernel access,
``aw`` atomic write (signal updates — unordered atomics do not race with
each other), ``free`` deallocation.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

__all__ = ["AccessCtx", "RaceReport", "Sanitizer", "resolve_mode"]

# kinds that CONFLICT with the key kind when unordered
_CONFLICTS: Dict[str, Tuple[str, ...]] = {
    "r": ("w", "rw", "free"),
    "w": ("r", "w", "rw", "aw", "free"),
    "rw": ("r", "w", "rw", "aw", "free"),
    "aw": ("r", "w", "rw", "free"),
    "free": ("r", "w", "rw", "aw", "free"),
}

# prev kinds whose conflict set is a subset of the key kind's: a prev access
# that is ordered-before and range-covered by the new one can be dropped.
_SUBSUMES: Dict[str, Tuple[str, ...]] = {
    cur: tuple(p for p, pc in _CONFLICTS.items() if set(pc) <= set(cc))
    for cur, cc in _CONFLICTS.items()
}


def resolve_mode(value) -> Optional[str]:
    """Normalize a ``sanitize=`` setting to ``None`` (off) or ``"race"``."""
    if value is None or value is False:
        return None
    if value is True:
        return "race"
    mode = str(value).strip().lower()
    if mode in ("", "0", "off", "none", "no"):
        return None
    if mode in ("race", "on", "1", "yes", "true"):
        return "race"
    raise ValueError(f"unknown sanitize mode {value!r} (expected 'race' or 'off')")


class AccessCtx:
    """One strand of sequential execution, with its vector clock.

    Vector clocks are copy-on-write: a fork shares the parent's dict and
    freezes it (both sides copy before their next mutation), so pure
    control-flow chains never pay for copies.
    """

    __slots__ = ("id", "tick", "vc", "owns", "rank", "stream", "note", "kernel")

    def __init__(self, vc: dict, owns: bool, rank=None, stream=None,
                 note=None, kernel=None):
        self.id: Optional[int] = None  # allocated lazily on first access
        self.tick = 0
        self.vc = vc
        self.owns = owns
        self.rank = rank
        self.stream = stream
        self.note = note
        self.kernel = kernel


class _Access:
    """One recorded access in a buffer's shadow history."""

    __slots__ = ("ctx_id", "tick", "kind", "start", "stop", "rank", "stream",
                 "note", "t")

    def __init__(self, ctx_id, tick, kind, start, stop, rank, stream, note, t):
        self.ctx_id = ctx_id
        self.tick = tick
        self.kind = kind
        self.start = start
        self.stop = stop
        self.rank = rank
        self.stream = stream
        self.note = note
        self.t = t

    def describe(self) -> dict:
        return {
            "rank": self.rank,
            "stream": self.stream,
            "op": self.note,
            "kind": self.kind,
            "start": self.start,
            "stop": self.stop,
            "t": self.t,
        }


class _Shadow:
    """Bounded per-buffer access history."""

    __slots__ = ("label", "size", "accesses")

    def __init__(self, label: str, size: int):
        self.label = label
        self.size = size
        self.accesses: List[_Access] = []


def _describe_ctx(ctx: AccessCtx, kind: str, start: int, stop: int, note: str,
                  t: float) -> dict:
    return {
        "rank": ctx.rank,
        "stream": ctx.stream,
        "op": note,
        "kind": kind,
        "start": start,
        "stop": stop,
        "t": t,
    }


def _fmt_access(a: dict) -> str:
    where = f"rank {a['rank']}" if a["rank"] is not None else "host"
    stream = f" stream {a['stream']}" if a.get("stream") else ""
    return (f"{a['kind']} [{a['start']}:{a['stop']}) by {where}{stream} "
            f"in {a['op']!r} at t={a['t']:.3e}")


class RaceReport:
    """Structured description of one sanitizer finding.

    ``kind`` is ``"race"``, ``"use-after-free"`` or ``"out-of-bounds"``.
    ``first``/``second`` describe the two accesses (for oob there is only
    ``second``, the faulting access) with rank, stream, op/span name,
    virtual timestamp and element range.
    """

    __slots__ = ("kind", "buffer", "start", "stop", "first", "second")

    def __init__(self, kind: str, buffer: str, start: int, stop: int,
                 first: Optional[dict], second: dict):
        self.kind = kind
        self.buffer = buffer
        self.start = start
        self.stop = stop
        self.first = first
        self.second = second

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "buffer": self.buffer,
            "start": self.start,
            "stop": self.stop,
            "first": self.first,
            "second": self.second,
        }

    def __str__(self) -> str:
        head = f"{self.kind}: {self.buffer}[{self.start}:{self.stop})"
        lines = [head]
        if self.first is not None:
            lines.append(f"  first : {_fmt_access(self.first)}")
        lines.append(f"  second: {_fmt_access(self.second)}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RaceReport({self.kind!r}, {self.buffer!r}, [{self.start}:{self.stop}))"


class Sanitizer:
    """Happens-before race detector attached to one :class:`~repro.sim.Engine`.

    Attach by setting ``engine.sanitizer = Sanitizer(engine)`` before any
    task runs (``launch(..., sanitize="race")`` does this for you).
    """

    def __init__(self, engine, mode: str = "race", max_reports: int = 64):
        self.engine = engine
        self.mode = mode
        self.max_reports = max_reports
        self.reports: List[RaceReport] = []
        self.dropped = 0
        self._next_id = 1
        self._root = AccessCtx({}, owns=True, note="main")
        self._stack: List[AccessCtx] = []
        self._task_ctxs: Dict[object, AccessCtx] = {}
        # id(obj) -> (obj, vc): sync-object vector clocks; the object is
        # pinned so ids are never recycled under us.
        self._vcs: Dict[int, Tuple[object, dict]] = {}
        # id(root DeviceBuffer) -> (root, _Shadow)
        self._shadows: Dict[int, Tuple[object, _Shadow]] = {}
        self._seen = set()

    # ------------------------------------------------------------------ #
    # Contexts.
    # ------------------------------------------------------------------ #

    def current(self) -> AccessCtx:
        """The context of whatever code is running right now."""
        if self._stack:
            return self._stack[-1]
        task = self.engine._current
        if task is None:
            return self._root
        ctx = self._task_ctxs.get(task)
        if ctx is None:  # task predates the sanitizer; treat as root fork
            ctx = self.fork(self._root, note=getattr(task, "name", "task"))
            self._task_ctxs[task] = ctx
        return ctx

    def _own(self, ctx: AccessCtx) -> None:
        if not ctx.owns:
            ctx.vc = dict(ctx.vc)
            ctx.owns = True

    def _bump(self, ctx: AccessCtx) -> None:
        """Advance the context's epoch (called whenever it releases)."""
        if ctx.id is None:
            return
        self._own(ctx)
        ctx.tick += 1
        ctx.vc[ctx.id] = ctx.tick

    def _epoch(self, ctx: AccessCtx) -> Tuple[int, int]:
        if ctx.id is None:
            ctx.id = self._next_id
            self._next_id += 1
            ctx.tick = 1
            self._own(ctx)
            ctx.vc[ctx.id] = 1
        return ctx.id, ctx.tick

    def fork(self, parent: Optional[AccessCtx] = None, *, rank=None,
             stream=None, note=None) -> AccessCtx:
        """New context ordered after ``parent`` (default: after current).

        The parent's epoch advances so that its *later* accesses are not
        covered by the child's inherited clock.
        """
        if parent is None:
            parent = self.current()
        child = AccessCtx(parent.vc, owns=False,
                          rank=parent.rank if rank is None else rank,
                          stream=parent.stream if stream is None else stream,
                          note=parent.note if note is None else note)
        parent.owns = False
        self._bump(parent)
        return child

    def push(self, ctx: AccessCtx) -> None:
        self._stack.append(ctx)

    def pop(self) -> None:
        self._stack.pop()

    def bind_rank(self, rank: int) -> None:
        """Attribute the current context (a rank's task) to ``rank``."""
        self.current().rank = rank

    # ------------------------------------------------------------------ #
    # Happens-before edges.
    # ------------------------------------------------------------------ #

    def _obj_vc(self, obj, create: bool) -> Optional[dict]:
        ent = self._vcs.get(id(obj))
        if ent is None:
            if not create:
                return None
            ent = (obj, {})
            self._vcs[id(obj)] = ent
        return ent[1]

    def release(self, obj) -> None:
        """current ──► obj: join the current clock into the object's."""
        ctx = self.current()
        if ctx.id is not None:
            self._own(ctx)
            ctx.vc[ctx.id] = ctx.tick
        ovc = self._obj_vc(obj, create=True)
        for k, v in ctx.vc.items():
            if v > ovc.get(k, 0):
                ovc[k] = v
        self._bump(ctx)

    def acquire(self, obj) -> None:
        """obj ──► current: join the object's clock into the current one."""
        ovc = self._obj_vc(obj, create=False)
        if not ovc:
            return
        ctx = self.current()
        self._own(ctx)
        vc = ctx.vc
        for k, v in ovc.items():
            if v > vc.get(k, 0):
                vc[k] = v

    def _acquire_into(self, ctx: AccessCtx, obj) -> None:
        ovc = self._obj_vc(obj, create=False)
        if not ovc:
            return
        self._own(ctx)
        vc = ctx.vc
        for k, v in ovc.items():
            if v > vc.get(k, 0):
                vc[k] = v

    def run_acquired(self, obj, fn) -> None:
        """Run ``fn`` in a fork of the current context ordered after ``obj``.

        Used for watcher/predicate callbacks fired inline by a notifier:
        the callback acts on behalf of the waiter, which is ordered after
        the release it observed, not merely after the notifier.
        """
        child = self.fork()
        self._acquire_into(child, obj)
        self._stack.append(child)
        try:
            fn()
        finally:
            self._stack.pop()

    def wrap_callback(self, fn):
        """Wrap an ``Engine.schedule`` callback: issue happens-before fire."""
        child = self.fork()
        stack = self._stack

        def run():
            stack.append(child)
            try:
                fn()
            finally:
                stack.pop()

        return run

    # --- tasks -------------------------------------------------------- #

    def on_spawn(self, task) -> None:
        self._task_ctxs[task] = self.fork(note=getattr(task, "name", "task"))

    def on_finish_task(self, task) -> None:
        ctx = self._task_ctxs.get(task)
        if ctx is not None:
            self._stack.append(ctx)
            try:
                self.release(task)
            finally:
                self._stack.pop()

    def on_join(self, task) -> None:
        self.acquire(task)

    # --- streams ------------------------------------------------------ #

    def snapshot_enqueue(self, op, stream) -> AccessCtx:
        """Freeze the enqueuer's clock; merged back in when the op starts."""
        return self.fork(note=getattr(op, "name", None),
                         stream=getattr(stream, "name", None))

    def push_op(self, op, stream) -> None:
        """Enter a stream op: FIFO predecessor chain ∨ enqueue snapshot."""
        enq = getattr(op, "_san_enq", None)
        child = self.fork(stream=getattr(stream, "name", None),
                          note=getattr(op, "name", None))
        # FIFO edge: ordered after the previous op's completion on this
        # stream (released by Stream._advance).
        self._acquire_into(child, stream)
        if enq is not None:
            self._own(child)
            vc = child.vc
            for k, v in enq.vc.items():
                if v > vc.get(k, 0):
                    vc[k] = v
            # The op belongs to the rank that enqueued it, regardless of
            # which context happened to drive the stream advance (often a
            # neighbour's delivery callback).
            if enq.rank is not None:
                child.rank = enq.rank
            child.note = enq.note or child.note
        self._stack.append(child)

    @contextmanager
    def kernel_scope(self, name: str):
        """Mark the current context as executing kernel ``name``.

        Inside a kernel scope, ``DeviceBuffer.data`` accesses are recorded
        conservatively as read-writes over the whole buffer.
        """
        ctx = self.current()
        prev = ctx.kernel
        ctx.kernel = name
        try:
            yield
        finally:
            ctx.kernel = prev

    # ------------------------------------------------------------------ #
    # Accesses.
    # ------------------------------------------------------------------ #

    def _resolve(self, buf):
        local = getattr(buf, "local", None)  # SymBuffer -> local DeviceBuffer
        if local is not None:
            buf = local
        else:
            dev = getattr(buf, "dev", None)  # RmaBuffer -> backing buffer
            if dev is not None:
                buf = dev
        root = getattr(buf, "_root", None)
        if root is None:
            return None  # host numpy array etc. — out of scope
        return root, getattr(buf, "_offset", 0), buf

    def _shadow_for(self, root) -> _Shadow:
        ent = self._shadows.get(id(root))
        if ent is None:
            n = self.engine.next_seq("sanbuf")
            dev = getattr(root, "device", None)
            where = f"gpu{getattr(dev, 'gpu_id', '?')}"
            label = f"{where}:buf{n}({root.size}x{root._array.dtype})"
            ent = (root, _Shadow(label, root.size))
            self._shadows[id(root)] = ent
        return ent[1]

    def on_data(self, buf) -> None:
        """Hook for ``DeviceBuffer.data``: record only inside kernels."""
        ctx = self.current()
        if ctx.kernel is None:
            return
        self.record(buf, "rw", note=ctx.kernel)

    def record(self, buf, kind: str, start: int = 0,
               count: Optional[int] = None, note: Optional[str] = None) -> None:
        """Record one access to simulated device memory and check races."""
        res = self._resolve(buf)
        if res is None:
            return
        root, off, view = res
        a0 = off + start
        a1 = a0 + (view.size if count is None else count)
        ctx = self.current()
        if note is None:
            note = ctx.kernel or ctx.note or "host"
        sh = self._shadow_for(root)
        conflicts = _CONFLICTS[kind]
        subsumes = _SUBSUMES[kind]
        vc = ctx.vc
        keep: List[_Access] = []
        for prev in sh.accesses:
            if prev.stop <= a0 or prev.start >= a1:
                keep.append(prev)
                continue
            ordered = vc.get(prev.ctx_id, 0) >= prev.tick
            if not ordered and prev.kind in conflicts:
                self._report("race", sh, prev.describe(),
                             _describe_ctx(ctx, kind, a0, a1, note,
                                           self.engine.now),
                             max(a0, prev.start), min(a1, prev.stop))
            if ordered and prev.start >= a0 and prev.stop <= a1 \
                    and prev.kind in subsumes:
                continue  # subsumed: drop from the shadow history
            keep.append(prev)
        cid, tick = self._epoch(ctx)
        keep.append(_Access(cid, tick, kind, a0, a1, ctx.rank, ctx.stream,
                            note, self.engine.now))
        sh.accesses = keep

    # ------------------------------------------------------------------ #
    # Memory-safety findings.
    # ------------------------------------------------------------------ #

    def record_free(self, buf) -> None:
        self.record(buf, "free", note="free")

    def report_uaf(self, buf) -> None:
        """Called from the freed-buffer check before it raises."""
        res = self._resolve(buf)
        if res is None:
            return
        root, off, view = res
        sh = self._shadow_for(root)
        first = None
        for prev in sh.accesses:
            if prev.kind == "free":
                first = prev.describe()
        ctx = self.current()
        note = ctx.kernel or ctx.note or "host"
        self._report("use-after-free", sh, first,
                     _describe_ctx(ctx, "r", off, off + view.size, note,
                                   self.engine.now),
                     off, off + view.size)

    def report_oob(self, buf, start: int, count: int, what: str) -> None:
        """A transfer addressed elements outside the symmetric window."""
        res = self._resolve(buf)
        label = res and self._shadow_for(res[0]).label or "<window>"
        ctx = self.current()
        note = ctx.kernel or ctx.note or what
        second = _describe_ctx(ctx, "w", start, start + count, note,
                               self.engine.now)
        self._emit(RaceReport("out-of-bounds", label, start, start + count,
                              None, second))

    # ------------------------------------------------------------------ #
    # Reporting.
    # ------------------------------------------------------------------ #

    def _report(self, kind: str, sh: _Shadow, first: Optional[dict],
                second: dict, lo: int, hi: int) -> None:
        f = first or {}
        key = (kind, sh.label, f.get("op"), f.get("kind"), f.get("rank"),
               second["op"], second["kind"], second["rank"])
        if key in self._seen:
            return
        self._seen.add(key)
        self._emit(RaceReport(kind, sh.label, lo, hi, first, second))

    def _emit(self, report: RaceReport) -> None:
        if len(self.reports) >= self.max_reports:
            self.dropped += 1
            return
        self.reports.append(report)
        eng = self.engine
        if eng.metrics.enabled:
            eng.metrics.inc("sanitizer_reports_total", kind=report.kind)
        second = report.second
        eng.trace(
            "sanitize." + report.kind,
            buffer=report.buffer,
            lo=report.start,
            hi=report.stop,
            src=second.get("rank") if second.get("rank") is not None else 0,
            stream=str(second.get("stream") or "host"),
            first=_fmt_access(report.first) if report.first else "",
            second=_fmt_access(second),
        )
