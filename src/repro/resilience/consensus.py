"""Fault-consensus rounds for the recovery runtime (ULFM-style agree).

One :class:`ConsensusState` per communicator id is shared by every member
rank (via the job's shared-state registry). A *round* is one collective
vote: every live member deposits a flag, crashed members are counted as
absent by the fault injector, and the first member to observe completion
snapshots the result so all members return the identical verdict — even
when further crashes land between their wake-ups.

Determinism: wake-ups ride the engine's FIFO broadcast, votes land in
simulation order, and the snapshot is computed exactly once, so one
(program, fault spec, seed) always yields the same sequence of verdicts
and survivor lists.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..errors import SimTimeoutError
from ..sim.sync import Broadcast
from .policy import RetryPolicy

__all__ = ["ConsensusState", "consensus_state", "consensus_round"]


class ConsensusState:
    """Shared vote board for one communicator (all member ranks)."""

    def __init__(self, engine, members):
        self.engine = engine
        self.members: Tuple[int, ...] = tuple(members)
        self.bcast = Broadcast(engine, name="uniconn-agree")
        # seq -> {global_rank: flag} deposited votes for each round.
        self.votes: Dict[int, Dict[int, bool]] = {}
        # seq -> (ok, survivors) snapshot taken by the round's first finisher.
        self.results: Dict[int, Tuple[bool, Tuple[int, ...]]] = {}
        self.hooked = False


def consensus_state(job, comm_id: int, engine, members) -> ConsensusState:
    """The shared consensus board for one communicator, creating it (and
    hooking crash notifications) on first use."""
    state = job.shared_state(
        ("uniconn_consensus", comm_id),
        lambda: ConsensusState(engine, members),
    )
    injector = engine.fault_injector
    if injector is not None and not state.hooked:
        state.hooked = True
        # A crash can complete a pending round (the dead rank will never
        # vote); wake the waiters so they re-evaluate.
        injector.crash_hooks.append(lambda _rank: state.bcast.notify_all())
    return state


def consensus_round(
    state: ConsensusState,
    seq: int,
    my_rank: int,
    flag: bool,
    policy: Optional[RetryPolicy] = None,
) -> Tuple[bool, Tuple[int, ...]]:
    """Run one vote round; returns ``(ok, survivors)``.

    ``ok`` is True iff every member voted True and none crashed —
    ULFM agreement semantics: a crash anywhere in the communicator fails
    the vote, forcing the caller through recovery before a possibly
    stale iteration is committed. ``survivors`` is the member list minus
    ranks the injector reports crashed, in membership order.

    The wait tolerates a bounded number of watchdog timeouts (the
    recovery window may legitimately exceed the engine watchdog while a
    slow peer drains); patience comes from ``policy.max_retries``, after
    which the hang is surfaced unchanged.
    """
    engine = state.engine
    injector = engine.fault_injector
    policy = policy or RetryPolicy()
    votes = state.votes.setdefault(seq, {})
    votes[my_rank] = bool(flag)
    state.bcast.notify_all()

    def done() -> bool:
        if seq in state.results:
            return True
        if injector is None:
            return len(votes) == len(state.members)
        crashed = injector.crashed_ranks
        return all(m in votes or m in crashed for m in state.members)

    timeouts = 0
    while not done():
        try:
            state.bcast.wait_for(done)
        except SimTimeoutError:
            timeouts += 1
            if done():
                break
            if timeouts > policy.max_retries:
                raise
    if seq not in state.results:
        crashed = frozenset(injector.crashed_ranks) if injector is not None else frozenset()
        survivors = tuple(m for m in state.members if m in votes and m not in crashed)
        ok = len(survivors) == len(state.members) and all(votes[m] for m in survivors)
        state.results[seq] = (ok, survivors)
        state.bcast.notify_all()
    return state.results[seq]
