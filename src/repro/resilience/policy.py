"""Unified retry policy for every recovery path.

One frozen dataclass replaces the MPI-only retransmission knobs: the MPI
matcher's wire retransmissions, the consensus engine's watchdog patience,
and any app-level recovery loop all derive their backoff schedule from the
same :class:`RetryPolicy`, so one ``retry,...`` clause in a fault spec
tunes them together. Deterministic: jitter (when enabled) is drawn from
the fault injector's seeded RNG, in simulation order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff/timeout schedule for retried operations.

    ``base``        first backoff delay (virtual seconds);
    ``max_retries`` attempts before giving up;
    ``multiplier``  geometric growth per attempt;
    ``jitter``      extra slack in ``[0, jitter)`` fractions of the backoff,
                    drawn from a seeded RNG (0 disables, keeping historical
                    byte-identical schedules);
    ``timeout``     optional wall cutoff (virtual seconds since the first
                    attempt) that overrides the attempt budget.
    """

    base: float = 2e-5
    max_retries: int = 6
    multiplier: float = 2.0
    jitter: float = 0.0
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ValueError(f"retry base must be > 0, got {self.base}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.multiplier < 1.0:
            raise ValueError(f"retry multiplier must be >= 1, got {self.multiplier}")
        if self.jitter < 0.0:
            raise ValueError(f"retry jitter must be >= 0, got {self.jitter}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"retry timeout must be > 0, got {self.timeout}")

    def backoff(self, attempt: int, rng=None) -> float:
        """Delay before retrying after failed attempt number ``attempt``
        (0-based). With ``jitter`` and an ``rng``, adds seeded random slack.
        """
        delay = self.base * (self.multiplier ** attempt)
        if self.jitter > 0.0 and rng is not None:
            delay *= 1.0 + self.jitter * rng.random()
        return delay

    def exhausted(self, attempt: int, elapsed: float = 0.0) -> bool:
        """True when attempt number ``attempt`` (0-based) should not run:
        the attempt budget is spent, or ``elapsed`` passed the timeout."""
        if self.timeout is not None and elapsed >= self.timeout:
            return True
        return attempt >= self.max_retries
