"""ULFM-style elastic recovery runtime (``repro.resilience``).

Turns injected faults from run-enders into recoverable events:

- :class:`RetryPolicy` — one deterministic backoff/timeout schedule shared
  by MPI wire retransmissions, consensus patience, and app-level recovery
  loops (tuned by the fault spec's ``retry,...`` clause);
- :mod:`~repro.resilience.consensus` — the fault-consensus rounds behind
  ``Communicator.agree()`` and ``Communicator.shrink()``;
- degraded-topology rescheduling lives in :mod:`repro.coll` (the policy
  re-prices collective schedules when links die), and the elastic apps in
  :mod:`repro.apps.jacobi.elastic` / :mod:`repro.apps.cg.elastic`.

See docs/FAULTS.md for the recovery lifecycle (revoke -> agree -> shrink).
"""

from .consensus import ConsensusState, consensus_round, consensus_state
from .elastic import RECOVERABLE_ERRORS, ElasticLoop
from .policy import RetryPolicy

__all__ = [
    "RetryPolicy",
    "ConsensusState",
    "consensus_round",
    "consensus_state",
    "ElasticLoop",
    "RECOVERABLE_ERRORS",
]
