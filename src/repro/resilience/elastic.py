"""The elastic recovery loop shared by the fault-tolerant applications.

One :class:`ElasticLoop` drives the ULFM-style recovery cycle around an
application's iteration body::

    try body -> agree -> commit        (healthy path: one extra consensus)
                      -> revoke -> shrink -> rebuild -> replay   (recovery)

The loop owns the current :class:`~repro.core.Communicator` (replacing it
on every shrink), counts recoveries against a budget, and calls back into
the application to rebuild its solver state over the surviving ranks from
its last *committed* checkpoint. Staged-but-uncommitted work is discarded
by construction: a checkpoint only commits after the ``agree`` that covers
the iteration which staged it, so no rank ever adopts data a dead peer
half-sent.

Determinism: everything here runs on the virtual clock with decisions
drawn from the seeded injector RNG, so a recovery schedule — which
iteration fails, who survives, how many replays happen — is a pure
function of (fault spec, seed, program).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from ..errors import (
    CommRevokedError,
    FaultInjectionError,
    GpucclError,
    GpushmemError,
    MpiTimeoutError,
    SimTimeoutError,
)
from ..obs import span

__all__ = ["RECOVERABLE_ERRORS", "ElasticLoop"]

#: Errors an elastic application treats as "this iteration failed, vote no":
#: backend communication failures, watchdog-delivered hangs, and revocation
#: raised by a peer that detected the fault first. Anything else (including
#: :class:`~repro.errors.DeadlockError`) stays fatal.
RECOVERABLE_ERRORS: Tuple[type, ...] = (
    MpiTimeoutError,
    GpucclError,
    GpushmemError,
    SimTimeoutError,
    CommRevokedError,
)


class ElasticLoop:
    """Drives try-step / agree / revoke-shrink-rebuild for one rank.

    ``rebuild(comm, generation)`` is the application callback: given the
    shrunken communicator and the new generation number it must restore the
    solver state from the last committed checkpoint (re-partition, refill
    buffers, fresh stream/Coordinator). All surviving ranks execute the
    loop in lockstep — ``agree``/``shrink`` are collective.
    """

    def __init__(
        self,
        comm,
        rebuild: Callable[[object, int], None],
        *,
        max_recoveries: int = 16,
        label: str = "elastic",
    ):
        self.comm = comm
        self._rebuild = rebuild
        self.max_recoveries = max_recoveries
        self.label = label
        self.generation = 0
        self.recoveries = 0
        self.ranks_lost = 0
        self.last_error: Optional[BaseException] = None

    # ------------------------------------------------------------------ #

    def run_step(self, body: Callable[[], None]) -> bool:
        """Run one recoverable iteration; True iff every member committed.

        The body must leave no work silently in flight (synchronize its
        stream) so a communication failure surfaces *inside* the try. On a
        failed vote the loop recovers (revoke, shrink, application rebuild)
        and returns False — the caller replays from its checkpoint.
        """
        failed = False
        try:
            body()
        except RECOVERABLE_ERRORS as exc:
            failed = True
            self.last_error = exc
        if self.comm.agree(not failed):
            return True
        self.recover()
        return False

    def recover(self) -> None:
        """One revoke/shrink/rebuild cycle (collective over survivors)."""
        self.recoveries += 1
        if self.recoveries > self.max_recoveries:
            raise FaultInjectionError(
                f"{self.label}: exceeded {self.max_recoveries} recoveries at "
                f"t={self.comm.engine.now:.9g}s — injected fault is not "
                f"survivable (last error: {self.last_error!r})"
            )
        engine = self.comm.engine
        reason = (
            f"{self.label} recovery #{self.recoveries}"
            f" ({type(self.last_error).__name__})"
            if self.last_error is not None
            else f"{self.label} recovery #{self.recoveries}"
        )
        ctx = (
            span(engine, "recover", cat="recover", rank=self.comm.global_rank(),
                 backend=self.comm.backend.name, generation=self.generation + 1)
            if engine.obs_spans and engine.trace_hook is not None
            else None
        )
        if ctx is None:
            self._recover_inner(reason)
        else:
            with ctx:
                self._recover_inner(reason)

    def _recover_inner(self, reason: str) -> None:
        old_size = self.comm.global_size()
        self.comm.revoke(reason)
        self.comm = self.comm.shrink()
        self.generation += 1
        lost = old_size - self.comm.global_size()
        self.ranks_lost += lost
        injector = self.comm.engine.fault_injector
        if injector is not None and self.comm.global_rank() == 0:
            injector.record(
                "recover.rebuild",
                label=self.label,
                generation=self.generation,
                survivors=self.comm.global_size(),
                lost=lost,
            )
        self._rebuild(self.comm, self.generation)
