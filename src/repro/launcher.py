"""SPMD job launcher over a simulated cluster.

``launch(fn, n_ranks, machine=...)`` is the simulated ``srun -n N ./app``:
it builds the cluster, starts one simulated process per rank, and hands each
a :class:`RankContext` — the per-process view (rank ids, device selection)
that the backend libraries and Uniconn's ``Environment`` build on.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Union

from ._compat import warn_once
from .errors import HardwareError
from .gpu.device import Device
from .hardware.cluster import Cluster
from .hardware.machines import MachineSpec, get_machine
from .obs.metrics import MetricsRegistry
from .sim import Engine, Tracer, run_spmd

__all__ = ["Job", "RankContext", "RunReport", "launch"]


class Job:
    """State shared by all ranks of one simulated job."""

    def __init__(self, engine: Engine, cluster: Cluster, n_ranks: int, placement: str = "block"):
        if placement not in ("block", "spread"):
            raise HardwareError(f"unknown placement {placement!r} (block|spread)")
        self.engine = engine
        self.cluster = cluster
        self.n_ranks = n_ranks
        self.placement = placement
        self._devices: Dict[int, Device] = {}
        self._shared: Dict[Any, Any] = {}

    def node_of_rank(self, rank: int) -> int:
        """Node index a rank is placed on under this job's placement."""
        if self.placement == "block":
            return rank // self.cluster.gpus_per_node
        return rank % self.cluster.n_nodes

    def node_rank_of(self, rank: int) -> int:
        """Node-local index of a rank under this job's placement."""
        if self.placement == "block":
            return rank % self.cluster.gpus_per_node
        return rank // self.cluster.n_nodes

    def device(self, gpu_id: int) -> Device:
        """The singleton :class:`Device` for one physical GPU."""
        dev = self._devices.get(gpu_id)
        if dev is None:
            dev = Device(self.engine, self.cluster, gpu_id)
            self._devices[gpu_id] = dev
        return dev

    def shared_state(self, key: Any, factory: Callable[[], Any]) -> Any:
        """Create-once shared state (backends keep their matchers here)."""
        if key not in self._shared:
            self._shared[key] = factory()
        return self._shared[key]


class RunReport(list):
    """Per-rank results plus run-level observability, returned by ``launch``.

    A ``RunReport`` *is* the per-rank results list (indexing, iteration and
    equality behave exactly as before the redesign), with run-level data as
    attributes:

    - ``stats``: engine scheduler counters plus ``virtual_time`` (and
      ``faults`` when an injector was installed) — the old ``stats_out``
      payload;
    - ``metrics``: the run's :class:`~repro.obs.MetricsRegistry`;
    - ``faults``: the injected-fault log (empty list for healthy runs);
    - ``trace_path``: where the Chrome trace was written (``trace_out=``),
      or None;
    - ``races``: :class:`~repro.sanitize.RaceReport` list from the
      happens-before sanitizer (empty unless ``sanitize="race"``).
    """

    __slots__ = ("stats", "metrics", "faults", "trace_path", "races")

    def __init__(self, results=()):
        super().__init__(results)
        self.stats: Dict[str, Any] = {}
        self.metrics: MetricsRegistry = MetricsRegistry(enabled=False)
        self.faults: List[Any] = []
        self.trace_path: Optional[str] = None
        self.races: List[Any] = []

    # ------------------------------------------------------------------ #
    # JSON round trip (the repro.serve result store persists this form).

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot: per-rank result summaries, stats, metrics,
        faults, races, capture counters, trace path (as a string).

        Per-rank results are summarized structurally — numpy arrays become
        ``{"__ndarray__": {sha256, shape, dtype}}`` digests, so bit-level
        comparisons survive serialization without shipping payloads.
        ``RunReport.from_dict(report.to_dict())`` round-trips: serializing
        the rebuilt report yields the identical document.
        """
        return {
            "results": [_jsonify_result(r) for r in self],
            "stats": {k: _jsonify_stats_value(k, v) for k, v in self.stats.items()},
            "metrics": self.metrics.as_dict(),
            "faults": [_fault_entry(f) for f in self.faults],
            "races": [r if isinstance(r, dict) else r.as_dict() for r in self.races],
            "trace_path": None if self.trace_path is None else str(self.trace_path),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RunReport":
        """Rebuild a report from :meth:`to_dict` output.

        Per-rank results come back as plain dicts (array payloads stay
        digests) and races as plain dicts; stats/metrics/faults/trace_path
        are faithful.
        """
        report = cls(d.get("results", ()))
        report.stats = dict(d.get("stats", {}))
        report.metrics = MetricsRegistry.from_dict(d.get("metrics", {}))
        report.faults = [
            (e["t"], e["kind"], dict(e["fields"])) for e in d.get("faults", ())
        ]
        report.races = list(d.get("races", ()))
        report.trace_path = d.get("trace_path")
        return report


def _fault_entry(f) -> Dict[str, Any]:
    """One injected fault as ``{"t", "kind", "fields"}`` (idempotent)."""
    if isinstance(f, dict):
        return {"t": f["t"], "kind": f["kind"], "fields": dict(f["fields"])}
    when, kind, fields = f
    return {"t": when, "kind": kind, "fields": dict(fields)}


def _jsonify_stats_value(key: str, value: Any) -> Any:
    if key == "faults":
        return [_fault_entry(f) for f in value]
    return _jsonify_result(value)


def _jsonify_result(value: Any) -> Any:
    """Recursively convert one per-rank result to JSON-safe data.

    Dataclasses become field dicts, numpy scalars become Python numbers,
    and arrays become content digests — large payloads never land in the
    store, but bitwise equality of two runs is still decidable from the
    serialized form.
    """
    import dataclasses

    import numpy as np

    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        import hashlib

        data = np.ascontiguousarray(value)
        return {"__ndarray__": {
            "sha256": hashlib.sha256(data.tobytes()).hexdigest(),
            "shape": list(data.shape),
            "dtype": str(data.dtype),
        }}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _jsonify_result(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): _jsonify_result(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify_result(v) for v in value]
    return repr(value)


class RankContext:
    """One rank's view of the job (the simulated process environment)."""

    def __init__(self, job: Job, rank: int):
        self.job = job
        self.rank = rank
        self.world_size = job.n_ranks
        self.engine = job.engine
        self.cluster = job.cluster
        gpn = job.cluster.gpus_per_node
        self.node = job.node_of_rank(rank)
        self.node_rank = job.node_rank_of(rank)
        self.node_size = sum(1 for r in range(job.n_ranks) if job.node_of_rank(r) == self.node)
        self.device: Optional[Device] = None

    def set_device(self, local_index: int) -> Device:
        """Select this rank's GPU by node-local index (cudaSetDevice)."""
        gpn = self.job.cluster.gpus_per_node
        if not 0 <= local_index < gpn:
            raise HardwareError(f"local device index {local_index} out of range [0,{gpn})")
        self.device = self.job.device(self.node * gpn + local_index)
        return self.device

    def require_device(self) -> Device:
        """The selected GPU, or an error if set_device was never called."""
        if self.device is None:
            raise HardwareError(f"rank {self.rank}: no GPU selected (call set_device)")
        return self.device

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RankContext rank={self.rank}/{self.world_size} node={self.node}>"


def launch(
    fn: Callable[..., Any],
    n_ranks: int,
    machine: Union[str, MachineSpec] = "perlmutter",
    *,
    args: tuple = (),
    n_nodes: Optional[int] = None,
    placement: str = "block",
    tracer: Optional[Tracer] = None,
    stats_out: Optional[dict] = None,
    fault_plan: Union["FaultPlan", str, None] = None,
    fault_seed: Optional[int] = None,
    obs: Optional[str] = None,
    trace_out: Optional[str] = None,
    sanitize: Union[str, bool, None] = None,
    coll: Any = None,
    capture: Optional[str] = None,
) -> "RunReport":
    """Run ``fn(ctx, *args)`` on ``n_ranks`` simulated ranks.

    Returns a :class:`RunReport` — the per-rank results list, carrying the
    run's ``stats``, ``metrics``, ``faults`` and ``trace_path`` as
    attributes.

    ``placement="block"`` (default, the paper's experiments) fills nodes in
    rank order; ``placement="spread"`` distributes ranks cyclically over
    ``n_nodes`` nodes (srun's cyclic distribution) — used by the inter-node
    two-GPU microbenchmarks.

    ``obs`` selects the observability level (``"off"``/``"metrics"``/
    ``"spans"``, default from ``UniconnConfig.obs_level``): ``"metrics"``
    collects host-side counters in ``report.metrics`` with zero effect on
    virtual time or traces; ``"spans"`` additionally emits begin/end span
    records for the :mod:`repro.obs` analyzer and ``repro report``.
    ``trace_out``, if given, writes the Chrome trace there after the run
    (creating a tracer when the caller passed none) and records the path
    in ``report.trace_path``.

    ``stats_out`` is a deprecated alias for ``report.stats`` — a dict the
    engine's scheduler counters plus ``virtual_time`` are copied into.

    ``sanitize`` enables the happens-before race & memory sanitizer
    (``"race"`` or True; default from ``UniconnConfig.sanitize``): every
    access to simulated device memory is checked for conflicting pairs with
    no happens-before path, and findings land in ``report.races`` (and
    ``stats["races"]``) as :class:`~repro.sanitize.RaceReport` objects.
    With the sanitizer off the run is untouched — traces are byte-identical.

    ``coll`` installs a collective algorithm policy (:mod:`repro.coll`):
    an algorithm name ("ring"/"tree"/"recdbl"/"bruck"/"hier") forces that
    schedule where applicable, ``"auto"``/``"tuned"`` selects per message
    size with the cost model, and a :class:`~repro.coll.CollTable` (or a
    path to a dumped table) replays saved selections. The default (None)
    honours the ``REPRO_COLL_TABLE`` environment variable, else leaves
    every backend on its legacy algorithm — byte-identical traces.

    ``capture`` selects graph capture & replay (:mod:`repro.sim.capture`;
    ``"off"``/``"auto"``/``"regions"``, default from
    ``UniconnConfig.capture``): annotated steady-state loops are recorded
    into a replay IR and, once their fingerprint stabilizes, replayed as a
    fused pre-resolved schedule with byte-identical traces. Counters land
    in ``report.stats["capture"]``. Fault injection or the sanitizer
    disable capture for the whole run (live execution, reason recorded).

    ``fault_plan`` (a :class:`~repro.sim.FaultPlan` or a spec string for
    ``FaultPlan.parse``) installs deterministic fault injection seeded by
    ``fault_seed`` — see :mod:`repro.sim.faults`. When omitted, the global
    config's ``fault_spec``/``fault_seed`` apply; the default (no plan)
    adds nothing to the run. The injected fault log lands in
    ``report.faults`` (and ``stats["faults"]``).
    """
    from .config import get_config

    if stats_out is not None:
        warn_once(
            "launch.stats_out",
            "launch(stats_out=...) is deprecated; use the returned "
            "RunReport's .stats attribute instead",
        )
    spec = get_machine(machine) if isinstance(machine, str) else machine
    min_nodes = math.ceil(n_ranks / spec.gpus_per_node)
    if n_nodes is None:
        n_nodes = min_nodes
    elif placement == "block" and n_nodes < min_nodes:
        raise HardwareError(f"{n_ranks} ranks need >= {min_nodes} nodes, got {n_nodes}")
    if obs is None:
        obs = get_config().obs_level
    if obs not in ("off", "metrics", "spans"):
        raise ValueError(f"unknown obs level {obs!r} (off|metrics|spans)")
    from .sanitize import Sanitizer, resolve_mode

    if sanitize is None:
        sanitize = get_config().sanitize
    san_mode = resolve_mode(sanitize)
    engine = Engine()
    engine.metrics.enabled = obs != "off"
    engine.obs_spans = obs == "spans"
    if san_mode is not None:
        engine.sanitizer = Sanitizer(engine, mode=san_mode)
    from .coll import resolve_policy

    engine.coll = resolve_policy(coll)
    if tracer is None and trace_out is not None:
        tracer = Tracer()
    if tracer is not None:
        tracer.install(engine)
    cluster = Cluster(spec, n_nodes)
    injector = _make_injector(engine, cluster, fault_plan, fault_seed)
    if capture is None:
        capture = get_config().capture
    from .sim.capture import CAPTURE_MODES, CaptureRuntime

    if capture not in CAPTURE_MODES:
        raise ValueError(f"unknown capture mode {capture!r} (off|auto|regions)")
    cap_rt = None
    capture_blocked = None
    if capture != "off":
        # Nondeterministic machinery and replay don't mix: live fallback.
        if injector is not None:
            capture_blocked = "fault-injector"
        elif engine.sanitizer is not None:
            capture_blocked = "sanitizer"
        else:
            cap_rt = CaptureRuntime(engine, capture)
            engine.capture = cap_rt

            # Link busy_until anchors are absolute virtual times; a replay
            # takeover must translate them by the skipped span or post-replay
            # transfers would see every link as long idle. Owning this shift
            # here (once per engine, covering the whole cluster) lets the
            # capture verifier accept steady-state periodic congestion.
            def _shift_links(span: float, _cluster=cluster) -> None:
                for link in _cluster.links():
                    link.busy_until += span

            engine.time_shift_hooks.append(_shift_links)
            cap_rt.congestion_safe = True
    job = Job(engine, cluster, n_ranks, placement=placement)

    def body(rank: int) -> Any:
        if engine.sanitizer is not None:
            engine.sanitizer.bind_rank(rank)
        return fn(RankContext(job, rank), *args)

    report = RunReport()
    try:
        report.extend(run_spmd(n_ranks, body, engine=engine))
        return report
    except BaseException as exc:
        # Let callers inspect partial observability (including any races
        # found before the failure) when a rank raises.
        exc.run_report = report
        raise
    finally:
        if engine.sanitizer is not None:
            report.races = list(engine.sanitizer.reports)
            report.stats["races"] = [r.as_dict() for r in report.races]
            if engine.sanitizer.dropped:
                report.stats["races_dropped"] = engine.sanitizer.dropped
        report.stats.update(engine.stats.as_dict())
        report.stats["virtual_time"] = engine.now
        if cap_rt is not None:
            report.stats["capture"] = cap_rt.stats_dict()
        else:
            report.stats["capture"] = {
                "mode": capture,
                "enabled": False,
                "disabled": capture_blocked,
                "replays": 0,
                "events_replayed": 0,
                "iterations_skipped": 0,
                "replay_host_seconds": 0.0,
            }
        report.metrics = engine.metrics
        if injector is not None:
            report.faults = list(injector.log)
            report.stats["faults"] = report.faults
            for _, kind, _fields in report.faults:
                engine.metrics.inc("faults_total", kind=kind)
        if trace_out is not None and tracer is not None:
            from .sim import write_chrome_trace

            report.trace_path = write_chrome_trace(tracer, trace_out)
        if stats_out is not None:
            stats_out.update(report.stats)


def _make_injector(engine, cluster, fault_plan, fault_seed):
    """Resolve launch()'s fault arguments (falling back to the global
    config) into an installed FaultInjector, or None for healthy runs."""
    from .config import get_config

    if fault_plan is None:
        cfg = get_config()
        fault_plan = cfg.fault_spec
        if fault_seed is None:
            fault_seed = cfg.fault_seed
    if fault_plan is None:
        return None
    from .sim.faults import FaultInjector, FaultPlan

    if isinstance(fault_plan, str):
        fault_plan = FaultPlan.parse(fault_plan)
    if fault_plan.empty():
        return None
    return FaultInjector(fault_plan, seed=fault_seed or 0).install(engine, cluster)
