"""Machine presets for the three supercomputers in Table I of the paper.

All wire-level numbers are derived from the table (NVLink 3.0 ~100 GB/s,
Infinity Fabric 50 GB/s/link, NVLink 4.0 ~150 GB/s, 4x 200 Gb/s NICs per
node) and from published microbenchmark studies of these systems; the
per-library software costs are calibrated so that the *shape* of the paper's
Fig. 2 holds (see DESIGN.md section 4). Absolute values are approximate by
design — the reproduction targets relative behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .gpu import GpuModel
from .profiles import GpucclProfile, GpushmemProfile, MpiProfile

__all__ = ["MachineSpec", "perlmutter", "lumi", "marenostrum5", "get_machine", "MACHINES"]


@dataclass(frozen=True)
class MachineSpec:
    """Everything the simulator needs to know about one supercomputer."""

    name: str
    gpus_per_node: int
    gpu: GpuModel
    # Intra-node GPU-GPU channel (NVLink / Infinity Fabric), per directed pair.
    intra_latency: float
    intra_bandwidth: float
    intra_msg_overhead: float
    # Per-GPU NIC and network fabric.
    nic_latency: float
    nic_bandwidth: float
    nic_msg_overhead: float
    fabric_latency: float
    # Software profiles; ``gpushmem`` is None where the table says N/A.
    mpi: MpiProfile
    gpuccl: GpucclProfile
    gpushmem: Optional[GpushmemProfile]
    notes: Tuple[str, ...] = field(default_factory=tuple)

    def has_gpushmem(self) -> bool:
        """Whether Table I lists a GPUSHMEM library for this machine."""
        return self.gpushmem is not None


_A100 = GpuModel(
    name="NVIDIA A100 40GB",
    mem_bandwidth=1.555e12,
    flop_rate=19.5e12,
    launch_overhead=3.5e-6,
    memcpy_overhead=6.0e-6,
    max_coop_blocks=1728,
    memory_bytes=40 * 2**30,
)

_MI250X_GCD = GpuModel(
    name="AMD MI250X (one GCD)",
    mem_bandwidth=1.6e12,
    flop_rate=23.9e12,
    launch_overhead=4.5e-6,
    memcpy_overhead=7.0e-6,
    max_coop_blocks=1760,
    memory_bytes=64 * 2**30,
)

_H100 = GpuModel(
    name="NVIDIA H100 64GB",
    mem_bandwidth=3.35e12,
    flop_rate=66.9e12,
    launch_overhead=3.0e-6,
    memcpy_overhead=5.0e-6,
    max_coop_blocks=2112,
    memory_bytes=64 * 2**30,
)


def perlmutter() -> MachineSpec:
    """NERSC Perlmutter GPU partition: 4x A100 + NVLink3 + Slingshot 11."""
    return MachineSpec(
        name="perlmutter",
        gpus_per_node=4,
        gpu=_A100,
        intra_latency=1.8e-6,
        intra_bandwidth=95.0e9,
        intra_msg_overhead=1.2e-7,
        nic_latency=1.1e-6,
        nic_bandwidth=23.0e9,
        nic_msg_overhead=2.0e-7,
        fabric_latency=0.8e-6,
        mpi=MpiProfile(
            host_call_overhead=4.0e-7,
            eager_threshold=8192,
            eager_copy_bandwidth=22.0e9,
            rendezvous_rtt_factor=2.0,
            progress_slice=2.0e-7,
            collective_call_overhead=8.0e-7,
        ),
        gpuccl=GpucclProfile(
            comm_launch_overhead=5.5e-6,
            per_op_overhead=6.0e-7,
            protocol_overhead=1.6e-6,
            ring_efficiency=0.92,
            bootstrap_overhead=2.5e-3,
        ),
        gpushmem=GpushmemProfile(
            host_post_overhead=1.4e-6,
            device_post_overhead=7.0e-7,
            warp_granularity_penalty=0.5,
            thread_granularity_penalty=0.08,
            signal_overhead=4.0e-7,
            proxy_overhead=4.5e-6,
            barrier_overhead=1.6e-6,
        ),
        notes=("Cray MPICH 8.1.30", "NCCL 2.24.3", "NVSHMEM 3.2.5", "CUDA 12.4"),
    )


def lumi(enable_rocshmem: bool = False) -> MachineSpec:
    """LUMI-G: 4x MI250X (8 GCDs seen as 8 GPUs) + Infinity Fabric + Slingshot.

    The HIP/ROCm stack treats each GCD as a separate GPU; like the paper we
    model ``gpus_per_node=8`` GCDs. RCCL on LUMI is known to be weak on
    small-message latency (paper Section II-C and [34]), which is captured
    by the large ``comm_launch_overhead``; GPUSHMEM is N/A (rocSHMEM was not
    mature, Table I).

    ``enable_rocshmem=True`` models the paper's *future work*: a rocSHMEM
    backend with the immature implementation's heavier software costs, so
    the GPUSHMEM code paths can be exercised on the AMD machine too.
    """
    rocshmem = GpushmemProfile(
        host_post_overhead=2.6e-6,
        device_post_overhead=1.6e-6,
        warp_granularity_penalty=0.4,
        thread_granularity_penalty=0.05,
        signal_overhead=9.0e-7,
        proxy_overhead=9.0e-6,
        barrier_overhead=3.0e-6,
        device_direct_discount=6.0e-7,
    )
    return MachineSpec(
        name="lumi",
        gpus_per_node=8,
        gpu=_MI250X_GCD,
        intra_latency=2.3e-6,
        intra_bandwidth=47.0e9,
        intra_msg_overhead=1.8e-7,
        nic_latency=1.2e-6,
        nic_bandwidth=23.0e9,
        nic_msg_overhead=2.2e-7,
        fabric_latency=0.8e-6,
        mpi=MpiProfile(
            host_call_overhead=4.5e-7,
            eager_threshold=8192,
            eager_copy_bandwidth=20.0e9,
            rendezvous_rtt_factor=2.0,
            progress_slice=2.2e-7,
            collective_call_overhead=9.0e-7,
        ),
        gpuccl=GpucclProfile(
            comm_launch_overhead=1.4e-5,
            per_op_overhead=9.0e-7,
            protocol_overhead=3.0e-6,
            ring_efficiency=0.86,
            bootstrap_overhead=3.0e-3,
        ),
        gpushmem=rocshmem if enable_rocshmem else None,
        notes=("Cray MPICH 8.1.29", "RCCL 2.18.3", "ROCm 6.0.3")
        + (("rocSHMEM (experimental)",) if enable_rocshmem else ("GPUSHMEM N/A",)),
    )


def marenostrum5() -> MachineSpec:
    """MareNostrum5 ACC: 4x H100 + NVLink4 + NDR InfiniBand + OpenMPI 4.1."""
    return MachineSpec(
        name="marenostrum5",
        gpus_per_node=4,
        gpu=_H100,
        intra_latency=1.5e-6,
        intra_bandwidth=140.0e9,
        intra_msg_overhead=1.0e-7,
        nic_latency=1.0e-6,
        nic_bandwidth=23.5e9,
        nic_msg_overhead=1.8e-7,
        fabric_latency=1.0e-6,
        mpi=MpiProfile(
            host_call_overhead=6.0e-7,
            eager_threshold=12288,
            eager_copy_bandwidth=24.0e9,
            rendezvous_rtt_factor=2.2,
            progress_slice=2.5e-7,
            collective_call_overhead=1.1e-6,
        ),
        gpuccl=GpucclProfile(
            comm_launch_overhead=5.0e-6,
            per_op_overhead=5.5e-7,
            protocol_overhead=1.5e-6,
            ring_efficiency=0.93,
            bootstrap_overhead=2.5e-3,
        ),
        gpushmem=GpushmemProfile(
            host_post_overhead=1.5e-6,
            device_post_overhead=6.5e-7,
            warp_granularity_penalty=0.5,
            thread_granularity_penalty=0.08,
            signal_overhead=4.0e-7,
            proxy_overhead=5.0e-6,
            barrier_overhead=1.5e-6,
        ),
        notes=("OpenMPI 4.1", "NCCL 2.18.5", "NVSHMEM 3.1.7", "CUDA 12.6"),
    )


MACHINES: Dict[str, object] = {
    "perlmutter": perlmutter,
    "lumi": lumi,
    "marenostrum5": marenostrum5,
}


def get_machine(name: str) -> MachineSpec:
    """Look up a machine preset by name (case-insensitive)."""
    try:
        factory = MACHINES[name.lower()]
    except KeyError:
        raise KeyError(f"unknown machine {name!r}; known: {sorted(MACHINES)}") from None
    return factory()  # type: ignore[operator]
