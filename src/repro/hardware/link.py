"""Alpha-beta link and path models with occupancy (contention) tracking.

A transfer over a :class:`Link` costs ``per_message_overhead + nbytes /
bandwidth`` of link occupancy plus ``latency`` of propagation. Links remember
until when they are busy, so concurrent transfers over the same link
serialize — this is what makes the windowed OSU bandwidth benchmark
approach (but not exceed) link bandwidth, as on real hardware.

A :class:`Path` is an ordered sequence of links (e.g. source NIC -> fabric ->
destination NIC). Transfers on a path are modelled cut-through: the
propagation latencies add up, the bandwidth is set by the bottleneck link,
and every link on the path is occupied for its own serialization time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import HardwareError

__all__ = ["Link", "Path", "Transfer"]


@dataclass(frozen=True)
class Transfer:
    """Resolved timing of one message over a link or path."""

    start: float  # when the wire starts carrying the message
    inject_done: float  # when the *sender side* is free again
    delivered: float  # when the last byte arrives at the destination

    @property
    def duration(self) -> float:
        """End-to-end time of this transfer."""
        return self.delivered - self.start


@dataclass
class Link:
    """One directed physical channel."""

    name: str
    latency: float  # propagation seconds (alpha)
    bandwidth: float  # bytes/second (beta)
    per_message_overhead: float = 0.0  # per-message serialization cost
    busy_until: float = field(default=0.0, compare=False)
    # Injected fault windows, installed by repro.sim.faults: a sorted list
    # of (start, end, kind, factor) with kind "down" (link carries nothing,
    # transfers wait the window out) or "degrade" (serialization x factor).
    # None (the default) keeps reserve() on the fault-free fast path.
    fault_windows: Optional[List[Tuple[float, float, str, float]]] = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise HardwareError(f"link {self.name}: bandwidth must be positive")
        if self.latency < 0 or self.per_message_overhead < 0:
            raise HardwareError(f"link {self.name}: negative timing parameter")

    def serialization_time(self, nbytes: int) -> float:
        """Time the wire is occupied by one message."""
        return self.per_message_overhead + nbytes / self.bandwidth

    def faulted_timing(self, start: float, nbytes: int) -> Tuple[float, float]:
        """(effective start, serialization time) under this link's fault
        windows: outage windows push the start out, the degradation window
        containing the start scales serialization."""
        ser = self.serialization_time(nbytes)
        factor = 1.0
        for win_start, win_end, kind, win_factor in self.fault_windows:
            if win_start <= start < win_end:
                if kind == "down":
                    start = win_end
                    factor = 1.0  # re-evaluate degradation at the new start
                elif win_factor > factor:
                    factor = win_factor
        return start, ser * factor

    def reserve(self, now: float, nbytes: int) -> Transfer:
        """Claim the link for one message starting no earlier than ``now``."""
        if nbytes < 0:
            raise HardwareError(f"negative message size {nbytes}")
        start = max(now, self.busy_until)
        if self.fault_windows is not None:
            start, ser = self.faulted_timing(start, nbytes)
        else:
            ser = self.serialization_time(nbytes)
        inject_done = start + ser
        self.busy_until = inject_done
        return Transfer(start, inject_done, inject_done + self.latency)

    def reset(self) -> None:
        """Clear occupancy (reuse across runs)."""
        self.busy_until = 0.0


@dataclass
class Path:
    """An ordered chain of links between two GPUs."""

    links: List[Link]

    def __post_init__(self) -> None:
        if not self.links:
            raise HardwareError("a path needs at least one link")
        # Link parameters are immutable after construction (only busy_until
        # changes), so the aggregates are computed once — reserve() and the
        # rendezvous handshake hit these on every message.
        self._latency = sum(l.latency for l in self.links)
        self._bandwidth = min(l.bandwidth for l in self.links)
        self._name = "+".join(l.name for l in self.links)
        self.refresh_fault_check()

    def refresh_fault_check(self) -> None:
        """Re-read member links' fault windows (no windows = fast reserve).

        Called at construction and by the fault injector for paths cached
        before installation, so reserve() pays one boolean check when the
        path is healthy.
        """
        self._fault_check = any(l.fault_windows for l in self.links)

    @property
    def latency(self) -> float:
        return self._latency

    @property
    def bandwidth(self) -> float:
        return self._bandwidth

    @property
    def name(self) -> str:
        return self._name

    def serialization_time(self, nbytes: int) -> float:
        """Time the wire is occupied by one message."""
        return max(l.serialization_time(nbytes) for l in self.links)

    def reserve(self, now: float, nbytes: int) -> Transfer:
        """Claim every link on the path for one cut-through message."""
        if nbytes < 0:
            raise HardwareError(f"negative message size {nbytes}")
        start = now
        for link in self.links:
            if link.busy_until > start:
                start = link.busy_until
        if self._fault_check:
            return self._reserve_faulted(start, nbytes)
        bottleneck = 0.0
        for link in self.links:
            ser = link.per_message_overhead + nbytes / link.bandwidth
            link.busy_until = start + ser
            if ser > bottleneck:
                bottleneck = ser
        inject_done = start + bottleneck
        return Transfer(start, inject_done, inject_done + self._latency)

    def _reserve_faulted(self, start: float, nbytes: int) -> Transfer:
        """Cut-through reservation honouring member links' fault windows:
        every outage window pushes the common start, the worst degradation
        sets the bottleneck serialization."""
        for link in self.links:
            if link.fault_windows is not None:
                link_start, _ = link.faulted_timing(start, nbytes)
                if link_start > start:
                    start = link_start
        bottleneck = 0.0
        for link in self.links:
            if link.fault_windows is not None:
                _, ser = link.faulted_timing(start, nbytes)
            else:
                ser = link.per_message_overhead + nbytes / link.bandwidth
            link.busy_until = start + ser
            if ser > bottleneck:
                bottleneck = ser
        inject_done = start + bottleneck
        return Transfer(start, inject_done, inject_done + self._latency)

    def transfer_time(self, nbytes: int) -> float:
        """Uncontended end-to-end time for one message (no reservation)."""
        return self.serialization_time(nbytes) + self.latency

    def reset(self) -> None:
        """Clear occupancy (reuse across runs)."""
        for link in self.links:
            link.reset()
