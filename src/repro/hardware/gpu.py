"""Model of a single GPU: launch overheads, memory bandwidth, compute rate.

Kernel execution time is estimated with a roofline-style model: the kernel
declares how many bytes it moves and how many flops it performs, and the
duration is the maximum of the memory time and the compute time, plus the
launch overhead. That is accurate enough to reproduce the *relative*
behaviour the paper measures (e.g. kernel-launch overhead dominating small
NCCL messages, stencil kernels being memory bound).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GpuModel", "KernelCost"]


@dataclass(frozen=True)
class KernelCost:
    """Declared work of one kernel launch."""

    bytes_moved: float = 0.0
    flops: float = 0.0

    def __add__(self, other: "KernelCost") -> "KernelCost":
        return KernelCost(self.bytes_moved + other.bytes_moved, self.flops + other.flops)


@dataclass(frozen=True)
class GpuModel:
    """Static performance characteristics of one GPU (or one MI250X GCD)."""

    name: str
    mem_bandwidth: float  # bytes/s of HBM
    flop_rate: float  # flop/s (FP32)
    launch_overhead: float  # seconds per kernel launch
    memcpy_overhead: float  # seconds per host<->device copy call
    max_coop_blocks: int  # cooperative-launch thread-block limit
    memory_bytes: int  # HBM capacity
    pcie_bandwidth: float = 25.0e9  # host<->device copy bandwidth (bytes/s)

    def kernel_time(self, cost: KernelCost) -> float:
        """Execution time of a kernel body (excluding launch overhead)."""
        mem_t = cost.bytes_moved / self.mem_bandwidth if cost.bytes_moved else 0.0
        cmp_t = cost.flops / self.flop_rate if cost.flops else 0.0
        return max(mem_t, cmp_t)

    def launch_time(self, cost: KernelCost) -> float:
        """Total time of one launch: overhead plus body."""
        return self.launch_overhead + self.kernel_time(cost)
