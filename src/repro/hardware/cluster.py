"""Cluster topology: nodes, GPUs, and routing between any two GPUs.

GPUs are identified by a *global* id ``0 .. n_gpus-1``; GPU ``g`` lives on
node ``g // gpus_per_node`` with local rank ``g % gpus_per_node`` (this is
the block placement every scheduler in the paper's experiments uses).

Routing:

- same GPU: a loopback channel at HBM speed (device-local copy);
- same node: a dedicated directed NVLink/Infinity-Fabric channel per GPU
  pair (switch-attached links, so distinct pairs do not contend, while two
  transfers between the same pair do);
- different nodes: source GPU's NIC egress -> network fabric -> destination
  GPU's NIC ingress. Each GPU owns one NIC (all three machines in Table I
  have one 200 Gb/s NIC per GPU), so inter-node transfers from/to the same
  GPU contend at its NIC.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple

from ..errors import HardwareError
from .link import Link, Path
from .machines import MachineSpec

__all__ = ["Cluster"]


class Cluster:
    """A set of nodes built from one :class:`MachineSpec`."""

    def __init__(self, machine: MachineSpec, n_nodes: int):
        if n_nodes < 1:
            raise HardwareError(f"n_nodes must be >= 1, got {n_nodes}")
        self.machine = machine
        self.n_nodes = n_nodes
        self.gpus_per_node = machine.gpus_per_node
        self.n_gpus = n_nodes * machine.gpus_per_node
        self._intra: Dict[Tuple[int, int], Link] = {}
        self._loop: Dict[int, Link] = {}
        self._nic_out: Dict[int, Link] = {}
        self._nic_in: Dict[int, Link] = {}
        self._paths: Dict[Tuple[int, int], Path] = {}
        # Fault-injection hook (repro.sim.faults): links are created lazily,
        # so an installed injector decorates each new link with its matching
        # fault windows here. None = healthy cluster, zero overhead.
        self.link_fault_hook: Optional[Callable[[Link], None]] = None

    def _register_link(self, link: Link) -> Link:
        """Run the fault hook (if any) over a freshly created link."""
        if self.link_fault_hook is not None:
            self.link_fault_hook(link)
        return link

    # ------------------------------------------------------------------ #
    # Placement helpers.
    # ------------------------------------------------------------------ #

    def check_gpu(self, gpu: int) -> int:
        """Validate a GPU id; returns it."""
        if not 0 <= gpu < self.n_gpus:
            raise HardwareError(f"gpu id {gpu} out of range [0, {self.n_gpus})")
        return gpu

    def node_of(self, gpu: int) -> int:
        """Node index of a GPU."""
        return self.check_gpu(gpu) // self.gpus_per_node

    def local_rank_of(self, gpu: int) -> int:
        """Node-local index of a GPU."""
        return self.check_gpu(gpu) % self.gpus_per_node

    def same_node(self, a: int, b: int) -> bool:
        """True when two GPUs share a node."""
        return self.node_of(a) == self.node_of(b)

    # ------------------------------------------------------------------ #
    # Links and routing.
    # ------------------------------------------------------------------ #

    def _loopback(self, gpu: int) -> Link:
        link = self._loop.get(gpu)
        if link is None:
            m = self.machine
            link = Link(
                name=f"loop[{gpu}]",
                latency=3.0e-7,
                bandwidth=m.gpu.mem_bandwidth / 2.0,  # read + write of HBM
                per_message_overhead=5.0e-8,
            )
            self._loop[gpu] = self._register_link(link)
        return link

    def _intra_link(self, src: int, dst: int) -> Link:
        key = (src, dst)
        link = self._intra.get(key)
        if link is None:
            m = self.machine
            link = Link(
                name=f"nvlink[{src}->{dst}]",
                latency=m.intra_latency,
                bandwidth=m.intra_bandwidth,
                per_message_overhead=m.intra_msg_overhead,
            )
            self._intra[key] = self._register_link(link)
        return link

    def nic_egress(self, gpu: int) -> Link:
        """The (shared, stateful) NIC egress link of a GPU."""
        link = self._nic_out.get(gpu)
        if link is None:
            m = self.machine
            link = Link(
                name=f"nic-out[{gpu}]",
                latency=m.nic_latency + m.fabric_latency,
                bandwidth=m.nic_bandwidth,
                per_message_overhead=m.nic_msg_overhead,
            )
            self._nic_out[gpu] = self._register_link(link)
        return link

    def nic_ingress(self, gpu: int) -> Link:
        """The (shared, stateful) NIC ingress link of a GPU."""
        link = self._nic_in.get(gpu)
        if link is None:
            m = self.machine
            link = Link(
                name=f"nic-in[{gpu}]",
                latency=m.nic_latency,
                bandwidth=m.nic_bandwidth,
                per_message_overhead=0.0,
            )
            self._nic_in[gpu] = self._register_link(link)
        return link

    def path(self, src: int, dst: int) -> Path:
        """The (cached, stateful) route from ``src`` to ``dst``."""
        key = (self.check_gpu(src), self.check_gpu(dst))
        cached = self._paths.get(key)
        if cached is not None:
            return cached
        if src == dst:
            path = Path([self._loopback(src)])
        elif self.same_node(src, dst):
            path = Path([self._intra_link(src, dst)])
        else:
            path = Path([self.nic_egress(src), self.nic_ingress(dst)])
        self._paths[key] = path
        return path

    def links(self) -> Iterator[Link]:
        """All links materialised so far (lazy creation: only used ones)."""
        for coll in (self._intra, self._loop, self._nic_out, self._nic_in):
            yield from coll.values()

    def reset_links(self) -> None:
        """Clear all occupancy state (for reusing a cluster across runs)."""
        for link in self.links():
            link.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Cluster {self.machine.name}: {self.n_nodes} nodes x "
            f"{self.gpus_per_node} GPUs ({self.machine.gpu.name})>"
        )
