"""Per-machine, per-library performance profiles.

The paper's central observation (Fig. 2) is that MPI, NCCL/RCCL and NVSHMEM
perform differently on the same wires because of *software* costs: host call
overheads, kernel-launch costs, eager/rendezvous protocol switches, proxy
threads for device-initiated network traffic, and so on. Backends read these
knobs from the machine model so that each supercomputer reproduces its own
characteristic crossovers.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MpiProfile", "GpucclProfile", "GpushmemProfile", "UniconnCosts"]


@dataclass(frozen=True)
class MpiProfile:
    """Software costs of the GPU-aware MPI implementation."""

    host_call_overhead: float  # CPU time charged per MPI call
    eager_threshold: int  # bytes; <= threshold uses the eager path
    eager_copy_bandwidth: float  # bytes/s of the eager bounce-buffer copy
    rendezvous_rtt_factor: float  # handshake cost, in units of path latency
    progress_slice: float  # granularity of the progress engine
    collective_call_overhead: float  # extra CPU time per collective
    # Real GPU-aware MPIs bounce large device buffers through host memory
    # inside collectives (no GPUDirect on that path) — the Fig. 6 mechanism.
    # Flip to True to model a hypothetical GPUDirect collective path.
    collective_gpu_direct: bool = False


@dataclass(frozen=True)
class GpucclProfile:
    """Software costs of the GPUCCL (NCCL/RCCL) implementation."""

    comm_launch_overhead: float  # launching the fused communication kernel
    per_op_overhead: float  # per send/recv inside a group
    protocol_overhead: float  # fixed per-message protocol cost (LL/Simple)
    ring_efficiency: float  # achievable fraction of bottleneck link bw
    bootstrap_overhead: float  # one-time comm-init cost
    # Each communication channel ("rail") adds one more block of the fused
    # kernel to launch and its own FIFO to arm; explicit-protocol pricing
    # charges this per selected channel.
    channel_launch_overhead: float = 9.0e-7


@dataclass(frozen=True)
class GpushmemProfile:
    """Software costs of the GPUSHMEM (NVSHMEM-like) implementation."""

    host_post_overhead: float  # enqueue cost of host/stream-side ops
    device_post_overhead: float  # device-initiated put/get issue cost (BLOCK)
    warp_granularity_penalty: float  # multiplier on bandwidth for WARP ops
    thread_granularity_penalty: float  # multiplier on bandwidth for THREAD ops
    signal_overhead: float  # cost of the signal update after the payload
    proxy_overhead: float  # extra latency for device-initiated inter-node ops
    barrier_overhead: float  # per-participant cost of barrier_all
    # Device-initiated intra-node puts are direct NVLink loads/stores and
    # skip most of the transfer software stack; this is subtracted from the
    # channel latency (clamped at the wire's serialization time).
    device_direct_discount: float = 1.2e-6
    # Arming one more put-with-signal rail costs an extra proxy post.
    channel_post_overhead: float = 7.0e-7


@dataclass(frozen=True)
class UniconnCosts:
    """Virtual-time charges attributed to the Uniconn wrapper layer.

    A pure-Python re-implementation would otherwise show exactly 0% overhead
    by construction; the paper measures small but non-zero overheads whose
    causes it names explicitly (Section VI-B). We model those causes:

    - ``dispatch``: the templated wrapper call itself (cheap, inlined in C++).
    - ``mpi_decision``: the blocking-vs-non-blocking decision logic in the
      MPI backend's Post/Acknowledge.
    - ``mpi_stream_query``: each blocking MPI call queries the GPU stream for
      pending operations; the paper singles this out as the main source of
      small-message Acknowledge overhead and variability.
    - ``device_dispatch``: the device API is inlined into application kernels
      and costs essentially nothing (paper: <= 0.08% on average).
    """

    dispatch: float = 3.0e-8
    mpi_decision: float = 3.0e-8
    mpi_stream_query: float = 7.0e-8
    device_dispatch: float = 1.0e-9
