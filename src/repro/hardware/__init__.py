"""Hardware models: GPUs, links, machine presets (Table I), cluster topology."""

from .cluster import Cluster
from .gpu import GpuModel, KernelCost
from .link import Link, Path, Transfer
from .machines import MACHINES, MachineSpec, get_machine, lumi, marenostrum5, perlmutter
from .profiles import GpucclProfile, GpushmemProfile, MpiProfile, UniconnCosts

__all__ = [
    "Cluster",
    "GpuModel",
    "KernelCost",
    "Link",
    "Path",
    "Transfer",
    "MACHINES",
    "MachineSpec",
    "get_machine",
    "lumi",
    "marenostrum5",
    "perlmutter",
    "GpucclProfile",
    "GpushmemProfile",
    "MpiProfile",
    "UniconnCosts",
]
