"""The paper's evaluation applications: Jacobi 2D, Conjugate Gradient, and
OSU-style network microbenchmarks — each in native per-library variants and
one Uniconn variant that runs on every backend."""
