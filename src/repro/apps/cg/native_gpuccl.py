"""Native GPUCCL CG: grouped-P2P AllGatherv + native AllReduce on stream.

GPUCCL has no allgatherv, so the exchange is composed from grouped
send/recv (one fused kernel); everything is stream-ordered, the host never
blocks inside the loop — scalars (alpha/beta) stay in device memory.
"""

from __future__ import annotations

import numpy as np

from ...backends import gpuccl
from ...backends.gpuccl import GpucclComm, get_unique_id
from ...backends.mpi import MpiContext
from ...gpu import dim3
from ...launcher import RankContext
from .harness import CgResult, measure_cg, setup_state
from .solver import CgConfig, CgProblem, k_dot_pq, k_pupdate, k_spmv, k_update


def run(rank_ctx: RankContext, cfg: CgConfig, problem: CgProblem, collect: bool = False) -> CgResult:
    """Run the native GPUCCL CG on this rank."""
    rank_ctx.set_device(rank_ctx.node_rank)
    mpi = MpiContext(rank_ctx)
    uid_token = np.zeros(1, np.int64)
    if rank_ctx.rank == 0:
        uid_token[0] = get_unique_id().value
    mpi.comm_world.bcast(uid_token, 1, root=0)
    uid = gpuccl.GpucclUniqueId.__new__(gpuccl.GpucclUniqueId)
    uid.value = int(uid_token[0])
    comm = GpucclComm(rank_ctx, uid, rank_ctx.world_size, rank_ctx.rank)

    device = rank_ctx.require_device()
    stream = device.create_stream()
    state = setup_state(rank_ctx, problem, alloc_comm=lambda n: device.malloc(n, np.float64))
    grid, block = dim3(max(1, state.n_local // 256)), dim3(256)
    p = comm.size

    comm.all_reduce(state.rs, state.rs, 1, "sum", stream)

    def allgatherv() -> None:
        gpuccl.group_start()
        my_seg = state.p_full.offset(state.my_offset, state.n_local)
        # Skip the self pair: the exchange is in place, so a self send/recv
        # would asynchronously rewrite the segment the other sends are
        # snapshotting (a data race); the local block is already in position.
        for dst in range(p):
            if dst != comm.rank:
                comm.send(my_seg, state.n_local, dst, stream)
        for src in range(p):
            if src != comm.rank:
                view = state.p_full.offset(state.displs[src], state.counts[src])
                comm.recv(view, state.counts[src], src, stream)
        gpuccl.group_end()

    def iteration() -> None:
        allgatherv()
        device.launch(k_spmv, grid, block, args=(state,), stream=stream)
        device.launch(k_dot_pq, grid, block, args=(state,), stream=stream)
        comm.all_reduce(state.pq, state.pq, 1, "sum", stream)
        device.launch(k_update, grid, block, args=(state,), stream=stream)
        comm.all_reduce(state.rs_new, state.rs_new, 1, "sum", stream)
        device.launch(k_pupdate, grid, block, args=(state,), stream=stream)

    def barrier() -> None:
        token = np.zeros(1, np.float32)
        comm.all_reduce(token, token, 1, "sum", stream)
        stream.synchronize()

    result = measure_cg(rank_ctx, cfg, stream, iteration, barrier, collect, state)
    mpi.finalize()
    return result
