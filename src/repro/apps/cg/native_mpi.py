"""Native GPU-aware-MPI CG: host-blocking AllGatherv + AllReduce.

MPI has no stream integration, so every communication step drains the
stream first — the structural cost the paper's Fig. 6 shows (on top of the
allgatherv algorithm itself).
"""

from __future__ import annotations

import numpy as np

from ...backends.mpi import MpiContext
from ...gpu import dim3
from ...launcher import RankContext
from .harness import CgResult, measure_cg, setup_state
from .solver import CgConfig, CgProblem, k_dot_pq, k_pupdate, k_spmv, k_update


def run(rank_ctx: RankContext, cfg: CgConfig, problem: CgProblem, collect: bool = False) -> CgResult:
    """Run the native MPI CG on this rank."""
    rank_ctx.set_device(rank_ctx.node_rank)
    mpi = MpiContext(rank_ctx)
    comm = mpi.comm_world
    device = rank_ctx.require_device()
    stream = device.create_stream()
    state = setup_state(rank_ctx, problem, alloc_comm=lambda n: device.malloc(n, np.float64))
    grid, block = dim3(max(1, state.n_local // 256)), dim3(256)

    # Initial global <r, r>.
    comm.allreduce(state.rs, state.rs, 1, "sum")

    def iteration() -> None:
        stream.synchronize()
        comm.allgatherv(
            state.p_local_view(), state.n_local, state.p_full, state.counts, state.displs
        )
        device.launch(k_spmv, grid, block, args=(state,), stream=stream)
        device.launch(k_dot_pq, grid, block, args=(state,), stream=stream)
        stream.synchronize()
        comm.allreduce(state.pq, state.pq, 1, "sum")
        device.launch(k_update, grid, block, args=(state,), stream=stream)
        stream.synchronize()
        comm.allreduce(state.rs_new, state.rs_new, 1, "sum")
        device.launch(k_pupdate, grid, block, args=(state,), stream=stream)

    result = measure_cg(rank_ctx, cfg, stream, iteration, comm.barrier, collect, state)
    mpi.finalize()
    return result
