"""Sparse SPD test matrices.

The paper uses Serena (1,391,349 rows, ~33 nnz/row) and Queen_4147
(4,147,110 rows, ~80 nnz/row) from the SuiteSparse collection. SuiteSparse
is not available offline, so we generate *structurally matched* synthetic
substitutes: symmetric positive-definite, banded (FEM-like locality) plus
random long-range couplings, with the same nnz/row density — the two
properties that drive both SpMV cost and the AllGatherv exchange volume.
Sizes are scaled down (configurable) to laptop scale; DESIGN.md documents
the substitution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

__all__ = ["MatrixSpec", "synthetic_spd", "serena_like", "queen_like", "MATRICES"]


@dataclass(frozen=True)
class MatrixSpec:
    """A named matrix recipe."""

    name: str
    n: int
    target_nnz_per_row: int
    seed: int

    def build(self) -> sp.csr_matrix:
        """Materialize the matrix for this spec."""
        return synthetic_spd(self.n, self.target_nnz_per_row, self.seed)


def synthetic_spd(n: int, nnz_per_row: int, seed: int = 0) -> sp.csr_matrix:
    """A symmetric positive-definite matrix with ~``nnz_per_row`` per row.

    Structure: tri-diagonal core + two FEM-like bands at ±k and ±k^2-ish
    offsets + random symmetric couplings to reach the target density; made
    strictly diagonally dominant (hence SPD).
    """
    if n < 8:
        raise ValueError(f"matrix too small: n={n}")
    rng = np.random.default_rng(seed)
    k = max(2, int(np.sqrt(n)))
    offsets = [1, k, min(k * 7, n - 1)]
    rows, cols, vals = [], [], []
    for off in offsets:
        idx = np.arange(n - off)
        rows.append(idx)
        cols.append(idx + off)
        vals.append(-np.abs(rng.normal(1.0, 0.2, size=n - off)).astype(np.float64))
    # Random long-range couplings to hit the density target.
    structured = 2 * sum(len(r) for r in rows)  # symmetric counterparts
    want = max(0, n * nnz_per_row - structured - n) // 2
    if want > 0:
        rr = rng.integers(0, n, size=want)
        cc = rng.integers(0, n, size=want)
        lo, hi = np.minimum(rr, cc), np.maximum(rr, cc)
        keep = lo < hi  # drop accidental diagonal hits
        rows.append(lo[keep])
        cols.append(hi[keep])
        vals.append(-np.abs(rng.normal(0.3, 0.1, size=int(keep.sum()))))
    r = np.concatenate(rows)
    c = np.concatenate(cols)
    v = np.concatenate(vals)
    upper = sp.coo_matrix((v, (r, c)), shape=(n, n))
    a = (upper + upper.T).tocsr()
    a.sum_duplicates()
    # Strict diagonal dominance -> SPD.
    row_abs = np.abs(a).sum(axis=1).A1
    a = a + sp.diags(row_abs + 1.0)
    out = a.tocsr().astype(np.float64)
    out.sort_indices()
    return out


def serena_like(n: int = 8192, seed: int = 7) -> MatrixSpec:
    """Scaled-down structural analogue of SuiteSparse Serena (~33 nnz/row)."""
    return MatrixSpec("serena-like", n, 33, seed)


def queen_like(n: int = 8192, seed: int = 11) -> MatrixSpec:
    """Scaled-down structural analogue of Queen_4147 (~80 nnz/row)."""
    return MatrixSpec("queen-like", n, 80, seed)


MATRICES = {"serena": serena_like, "queen": queen_like}
