"""Uniconn CG: ONE implementation across backends and launch modes.

Host modes use ``Coordinator.all_gather_v`` + ``all_reduce`` (the paper's
CG uses exactly these two primitives); PureDevice binds a kernel that runs
a whole iteration on-device through the Uniconn device API.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ...core import Communicator, Coordinator, Environment, IN_PLACE, LaunchMode, Memory
from ...gpu import dim3
from ...gpu.kernel import device_kernel
from ...launcher import RankContext
from .harness import CgResult, measure_cg, setup_state
from .solver import (
    CgConfig,
    CgProblem,
    CgState,
    _spmv_cost,
    _vec_cost_factory,
    k_dot_pq,
    k_pupdate,
    k_spmv,
    k_update,
)


@device_kernel(name="cg_uniconn_dev_step")
def _cg_dev_step(ctx, state: CgState, comm_d) -> None:
    u = ctx.uniconn
    p, me = comm_d.size, comm_d.rank
    window = state.p_full.offset_by(state.my_offset, state.n_local)
    # shift starts at 1: posting the window onto itself races with the
    # forward posts reading it, and the local block is already in place.
    for shift in range(1, p):
        pe = (me + shift) % p
        u.post(window, window, state.n_local, None, 0, pe, comm_d)
    u.quiet()
    u.barrier(comm_d)
    ctx.compute(_spmv_cost(ctx, state))
    state.q.data[:] = state.a_local @ state.p_full.data
    state.pq.data[0] = float(state.p_local_view() @ state.q.data)
    u.all_reduce(state.pq, state.pq, 1, "sum", comm_d)
    ctx.compute(_vec_cost_factory(6)(ctx, state))
    alpha = state.rs.data[0] / state.pq.data[0]
    state.x.data[:] += alpha * state.p_local_view()
    state.r.data[:] -= alpha * state.q.data
    state.rs_new.data[0] = float(state.r.data @ state.r.data)
    u.all_reduce(state.rs_new, state.rs_new, 1, "sum", comm_d)
    ctx.compute(_vec_cost_factory(4)(ctx, state))
    beta = state.rs_new.data[0] / state.rs.data[0]
    p_local = state.p_local_view()
    p_local[:] = state.r.data + beta * p_local
    state.rs.data[0] = state.rs_new.data[0]


def run(
    rank_ctx: RankContext,
    cfg: CgConfig,
    problem: CgProblem,
    backend: Union[str, type, None] = None,
    launch_mode: Union[str, LaunchMode, None] = None,
    collect: bool = False,
) -> CgResult:
    """Run the Uniconn CG on this rank for any backend/launch mode."""
    env = Environment(rank_ctx, backend=backend)
    env.set_device(env.node_rank())
    comm = Communicator(env)
    device = env.device
    stream = device.create_stream()
    coord = Coordinator(env, stream=stream, launch_mode=launch_mode)
    mode = coord.launch_mode

    state = setup_state(rank_ctx, problem, alloc_comm=lambda n: Memory.alloc(env, n, dtype=np.float64))
    grid, block = dim3(max(1, state.n_local // 256)), dim3(256)

    coord.all_reduce(IN_PLACE, state.rs, 1, "sum", comm)
    stream.synchronize()

    if mode is LaunchMode.PureDevice:
        comm_d = comm.to_device()
        d_grid = dim3(min(32, max(1, state.n_local // 256)))
        coord.bind_kernel(LaunchMode.PureDevice, _cg_dev_step, d_grid, block,
                          args=(state, comm_d))

        def iteration() -> None:
            coord.launch_kernel()

    else:
        def iteration() -> None:
            coord.all_gather_v(
                state.p_full.offset_by(state.my_offset, state.n_local),
                state.n_local, state.p_full, state.counts, state.displs, comm,
            )
            device.launch(k_spmv, grid, block, args=(state,), stream=stream)
            device.launch(k_dot_pq, grid, block, args=(state,), stream=stream)
            coord.all_reduce(IN_PLACE, state.pq, 1, "sum", comm)
            device.launch(k_update, grid, block, args=(state,), stream=stream)
            coord.all_reduce(IN_PLACE, state.rs_new, 1, "sum", comm)
            device.launch(k_pupdate, grid, block, args=(state,), stream=stream)

    result = measure_cg(rank_ctx, cfg, stream, iteration, lambda: comm.barrier(stream=stream), collect, state)
    env.close()
    return result
