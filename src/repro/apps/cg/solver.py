"""Conjugate Gradient: problem setup, serial reference, shared kernels.

The distributed algorithm follows the paper's Section VI-D: rows of A are
split into equal-length blocks; each iteration exchanges the full search
direction with **AllGatherv**, multiplies the local rows, and reduces two
dot products with **AllReduce**. Scalars (alpha/beta/residual) live in
device memory so that stream-ordered backends never synchronize the host
inside the loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
import scipy.sparse as sp

from ...gpu.kernel import DeviceCtx, kernel
from ...hardware.gpu import KernelCost

__all__ = [
    "CgConfig", "CgProblem", "CgState", "make_problem", "row_partition",
    "serial_cg", "k_spmv", "k_dot_pq", "k_update", "k_pupdate", "final_residual",
]


@dataclass(frozen=True)
class CgConfig:
    """One CG experiment (paper: 10K iterations, no warm-up, 8 GPUs)."""

    n: int = 4096
    nnz_per_row: int = 33
    iters: int = 30
    seed: int = 7


@dataclass
class CgProblem:
    a: sp.csr_matrix
    b: np.ndarray
    x_true: np.ndarray


def make_problem(cfg: CgConfig, matrix: sp.csr_matrix = None) -> CgProblem:
    """Build A (or take it) and a right-hand side with a known solution."""
    from .matrices import synthetic_spd

    a = matrix if matrix is not None else synthetic_spd(cfg.n, cfg.nnz_per_row, cfg.seed)
    rng = np.random.default_rng(cfg.seed + 1)
    x_true = rng.normal(size=a.shape[0])
    x_true /= np.linalg.norm(x_true)
    return CgProblem(a, a @ x_true, x_true)


def row_partition(n: int, nranks: int) -> Tuple[List[int], List[int]]:
    """Equal-length row blocks (paper: 'equally in length', ignoring nnz)."""
    base, extra = divmod(n, nranks)
    counts = [base + (1 if r < extra else 0) for r in range(nranks)]
    displs = [sum(counts[:r]) for r in range(nranks)]
    return counts, displs


def serial_cg(problem: CgProblem, iters: int) -> Tuple[np.ndarray, float]:
    """Single-process reference with the same update order."""
    a, b = problem.a, problem.b
    x = np.zeros_like(b)
    r = b.copy()
    p = r.copy()
    rs = float(r @ r)
    for _ in range(iters):
        q = a @ p
        alpha = rs / float(p @ q)
        x += alpha * p
        r -= alpha * q
        rs_new = float(r @ r)
        p = r + (rs_new / rs) * p
        rs = rs_new
    return x, float(np.linalg.norm(b - a @ x))


# --------------------------------------------------------------------- #
# Distributed state + kernels (shared by every variant).
# --------------------------------------------------------------------- #


@dataclass
class CgState:
    """One rank's CG data. ``p_full`` is the communication buffer (the
    AllGatherv target, symmetric under GPUSHMEM); the local search segment
    is its slice at this rank's displacement."""

    a_local: sp.csr_matrix
    p_full: object  # n elements (Memory buffer)
    q: object  # local rows
    x: object
    r: object
    pq: object  # scalar buffers (1 element each)
    rs: object
    rs_new: object
    counts: List[int]
    displs: List[int]
    me: int

    @property
    def n_local(self) -> int:
        """Number of matrix rows this rank owns."""
        return self.counts[self.me]

    @property
    def my_offset(self) -> int:
        """This rank's row displacement in the global vector."""
        return self.displs[self.me]

    def p_local_view(self) -> np.ndarray:
        """This rank's slice of the search-direction vector.

        Sliced at the buffer level (not on the numpy view) so kernel access
        recording covers only the local segment — the rest of ``p_full`` is
        legitimately rewritten by incoming allgather puts.
        """
        return self.p_full.offset_by(self.my_offset, self.n_local).data


def _spmv_cost(ctx: DeviceCtx, state: CgState) -> KernelCost:
    nnz = state.a_local.nnz
    return KernelCost(bytes_moved=12.0 * nnz + 8.0 * state.n_local, flops=2.0 * nnz)


def _vec_cost_factory(words_per_elem: float):
    def cost(ctx: DeviceCtx, state: CgState) -> KernelCost:
        n = state.n_local
        return KernelCost(bytes_moved=words_per_elem * 8.0 * n, flops=2.0 * n)

    return cost


@kernel(name="cg_spmv", cost=_spmv_cost)
def k_spmv(ctx: DeviceCtx, state: CgState) -> None:
    """q = A_local @ p_full."""
    state.q.data[:] = state.a_local @ state.p_full.data


@kernel(name="cg_dot_pq", cost=_vec_cost_factory(2))
def k_dot_pq(ctx: DeviceCtx, state: CgState) -> None:
    """pq = <p_local, q> (local part; AllReduce completes it)."""
    state.pq.data[0] = float(state.p_local_view() @ state.q.data)


@kernel(name="cg_update", cost=_vec_cost_factory(6))
def k_update(ctx: DeviceCtx, state: CgState) -> None:
    """alpha = rs/pq; x += alpha p; r -= alpha q; rs_new = <r,r> local."""
    alpha = state.rs.data[0] / state.pq.data[0]
    state.x.data[:] += alpha * state.p_local_view()
    state.r.data[:] -= alpha * state.q.data
    state.rs_new.data[0] = float(state.r.data @ state.r.data)


@kernel(name="cg_pupdate", cost=_vec_cost_factory(4))
def k_pupdate(ctx: DeviceCtx, state: CgState) -> None:
    """beta = rs_new/rs; p = r + beta p; rs = rs_new."""
    beta = state.rs_new.data[0] / state.rs.data[0]
    p_local = state.p_local_view()
    p_local[:] = state.r.data + beta * p_local
    state.rs.data[0] = state.rs_new.data[0]


def final_residual(problem: CgProblem, x_full: np.ndarray) -> float:
    """||b - A x|| of an assembled solution."""
    return float(np.linalg.norm(problem.b - problem.a @ x_full))
