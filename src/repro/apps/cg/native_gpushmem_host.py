"""Native GPUSHMEM CG, host/stream API: put-composed AllGatherv + team
AllReduce, all stream-ordered (paper Section V-A: collectives without a
native mapping are emulated with puts plus barriers)."""

from __future__ import annotations

import numpy as np

from ...backends.gpushmem import ShmemContext
from ...gpu import dim3
from ...launcher import RankContext
from .harness import CgResult, measure_cg, setup_state
from .solver import CgConfig, CgProblem, k_dot_pq, k_pupdate, k_spmv, k_update


def run(rank_ctx: RankContext, cfg: CgConfig, problem: CgProblem, collect: bool = False) -> CgResult:
    """Run the native GPUSHMEM host-API CG on this rank."""
    rank_ctx.set_device(rank_ctx.node_rank)
    shmem = ShmemContext(rank_ctx)
    device = rank_ctx.require_device()
    stream = device.create_stream()
    state = setup_state(rank_ctx, problem, alloc_comm=lambda n: shmem.malloc(n, np.float64))
    grid, block = dim3(max(1, state.n_local // 256)), dim3(256)
    p, me = shmem.n_pes, shmem.my_pe

    shmem.allreduce(state.rs, state.rs, 1, "sum")

    def allgatherv() -> None:
        window = state.p_full.offset_by(state.my_offset, state.n_local)
        # shift starts at 1: putting the window onto itself races with the
        # forward puts reading it, and the local block is already in place.
        for shift in range(1, p):
            pe = (me + shift) % p
            shmem.put_on_stream(window, window, state.n_local, pe, stream)
        shmem.barrier_all_on_stream(stream)

    def iteration() -> None:
        allgatherv()
        device.launch(k_spmv, grid, block, args=(state,), stream=stream)
        device.launch(k_dot_pq, grid, block, args=(state,), stream=stream)
        shmem.allreduce(state.pq, state.pq, 1, "sum", stream=stream)
        device.launch(k_update, grid, block, args=(state,), stream=stream)
        shmem.allreduce(state.rs_new, state.rs_new, 1, "sum", stream=stream)
        device.launch(k_pupdate, grid, block, args=(state,), stream=stream)

    return measure_cg(rank_ctx, cfg, stream, iteration, shmem.barrier_all, collect, state)
