"""Elastic CG: shrink-and-re-decompose recovery for the paper's CG solver.

Same recovery cycle as :mod:`repro.apps.jacobi.elastic` (see docs/FAULTS.md),
applied to the AllGatherv + AllReduce iteration of :mod:`.uniconn`:

- the committed checkpoint is the full iteration state ``(x, r, p, rs)``
  replicated on every host plus its iteration number. ``x``/``r`` are
  staged with AllGatherv into a pre-allocated symmetric buffer; ``p`` is
  read from ``p_full`` right after the iteration's own gather; ``rs`` is
  the last AllReduced scalar (identical on every rank by construction);
- a failed iteration (backend error, watchdog timeout, peer revocation,
  crashed member) fails the ``agree`` vote, and the survivors revoke,
  shrink, re-partition the matrix rows over the new size, restore their
  segments from the checkpoint, and replay.

CG dot products are reduced, so the trajectory depends on the rank count —
a shrunken run is *not* bitwise-equal to the unshrunken one. What is
guaranteed (and what the chaos sweep asserts) is determinism: the same
(fault spec, seed) reproduces the same recovery schedule and bitwise the
same final ``x``, and the residual still converges to the solver's
tolerance because replay restarts from a mathematically exact state.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ...core import Communicator, Coordinator, Environment, IN_PLACE, Memory
from ...gpu import dim3
from ...launcher import RankContext
from ...resilience import ElasticLoop
from .harness import CgResult
from .solver import (
    CgConfig,
    CgProblem,
    CgState,
    k_dot_pq,
    k_pupdate,
    k_spmv,
    k_update,
    row_partition,
)

__all__ = ["run"]


def run(
    rank_ctx: RankContext,
    cfg: CgConfig,
    problem: CgProblem,
    backend: Union[str, type, None] = None,
    collect: bool = False,
    checkpoint_every: int = 5,
    max_recoveries: int = 16,
) -> CgResult:
    """Run the elastic Uniconn CG on this rank (any backend)."""
    env = Environment(rank_ctx, backend=backend)
    env.set_device(env.node_rank())
    comm = Communicator(env)
    device = env.device
    engine = rank_ctx.engine
    n = problem.a.shape[0]

    # ---- Symmetric allocations: up-front, size independent of nranks ---- #
    p_full = Memory.alloc(env, n, dtype=np.float64)
    pq = Memory.alloc(env, 1, dtype=np.float64)
    rs = Memory.alloc(env, 1, dtype=np.float64)
    rs_new = Memory.alloc(env, 1, dtype=np.float64)
    ck_buf = Memory.alloc(env, n, dtype=np.float64)  # checkpoint gather target

    # ---- Committed checkpoint: full (x, r, p, rs) + iteration number ---- #
    # The initial <r,r> is computed host-side from the replicated b rather
    # than reduced from per-rank partials: no collective runs outside the
    # recovery loop, so even a fault at t=0 lands on a recoverable path,
    # and the value is independent of the (changing) rank count.
    ck = {
        "x": np.zeros(n),
        "r": problem.b.copy(),
        "p": problem.b.copy(),
        "rs": float(problem.b @ problem.b),
        "it": 0,
    }

    cur = {}

    def build(comm_now, generation: int) -> None:
        """(Re)build solver state over ``comm_now`` from the checkpoint."""
        p, me = comm_now.global_size(), comm_now.global_rank()
        counts, displs = row_partition(n, p)
        lo, cnt = displs[me], counts[me]
        state = CgState(
            a_local=problem.a[lo : lo + cnt, :].tocsr(),
            p_full=p_full,
            q=device.malloc(cnt, np.float64),
            x=device.malloc(cnt, np.float64),
            r=device.malloc(cnt, np.float64),
            pq=pq,
            rs=rs,
            rs_new=rs_new,
            counts=counts,
            displs=displs,
            me=me,
        )
        state.x.write(ck["x"][lo : lo + cnt])
        state.r.write(ck["r"][lo : lo + cnt])
        p_full.write(ck["p"])
        rs.write(np.array([ck["rs"]]))
        old_stream = cur.get("stream")
        if old_stream is not None:
            # Abandon the failed generation's stream: its still-pending
            # kernels would otherwise complete late and write into the
            # shared symmetric buffers (p_full, pq, rs, rs_new) this
            # rebuild is about to restore.
            old_stream.abort()
        stream = device.create_stream()
        coord = Coordinator(env, stream=stream)
        grid, block = dim3(max(1, cnt // 256)), dim3(256)
        cur.update(state=state, stream=stream, coord=coord,
                   grid=grid, block=block, it=ck["it"], generation=generation)

    loop = ElasticLoop(comm, build, max_recoveries=max_recoveries, label="cg-elastic")
    build(comm, 0)

    staged = {"it": -1}

    def body() -> None:
        """One recoverable CG iteration (stages a checkpoint when due)."""
        state, coord, stream = cur["state"], cur["coord"], cur["stream"]
        grid, block = cur["grid"], cur["block"]
        staged["it"] = -1
        coord.all_gather_v(
            state.p_full.offset_by(state.my_offset, state.n_local),
            state.n_local, state.p_full, state.counts, state.displs, loop.comm,
        )
        if cur["it"] % checkpoint_every == 0 and cur["it"] != ck["it"]:
            stream.synchronize()
            staged["p"] = state.p_full.read().copy()
            coord.all_gather_v(state.x, state.n_local, ck_buf,
                               state.counts, state.displs, loop.comm)
            stream.synchronize()
            staged["x"] = ck_buf.read().copy()
            coord.all_gather_v(state.r, state.n_local, ck_buf,
                               state.counts, state.displs, loop.comm)
            stream.synchronize()
            staged["r"] = ck_buf.read().copy()
            staged["rs"] = float(state.rs.data[0])
            staged["it"] = cur["it"]
        device.launch(k_spmv, grid, block, args=(state,), stream=stream)
        device.launch(k_dot_pq, grid, block, args=(state,), stream=stream)
        coord.all_reduce(IN_PLACE, state.pq, 1, "sum", loop.comm)
        device.launch(k_update, grid, block, args=(state,), stream=stream)
        coord.all_reduce(IN_PLACE, state.rs_new, 1, "sum", loop.comm)
        device.launch(k_pupdate, grid, block, args=(state,), stream=stream)
        stream.synchronize()

    t0 = engine.now
    restarts = 0
    while cur["it"] < cfg.iters:
        if loop.run_step(body):
            if staged["it"] >= 0:
                ck.update(x=staged["x"], r=staged["r"], p=staged["p"],
                          rs=staged["rs"], it=staged["it"])
            cur["it"] += 1
        else:
            restarts += 1
    cur["stream"].synchronize()
    total = engine.now - t0

    state = cur["state"]
    result = CgResult(
        rank=loop.comm.global_rank(),
        nranks=loop.comm.global_size(),
        total_time=total,
        time_per_iter=total / cfg.iters,
        x_local=state.x.read() if collect else None,
        restarts=restarts,
    )
    if loop.generation == 0:
        env.close()
    else:
        env.release()
    return result
