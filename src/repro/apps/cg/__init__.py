"""Conjugate Gradient solver: native variants + one Uniconn variant."""

from __future__ import annotations

from typing import Optional

from ..._compat import warn_once
from ...launcher import RankContext, launch
from ...sim import Tracer
from . import elastic, native_gpuccl, native_gpushmem_device, native_gpushmem_host, native_mpi, uniconn
from .harness import CgResult, assemble_x
from .matrices import MATRICES, queen_like, serena_like, synthetic_spd
from .solver import CgConfig, CgProblem, CgState, final_residual, make_problem, row_partition, serial_cg

__all__ = [
    "CgConfig",
    "CgProblem",
    "CgResult",
    "CgState",
    "NATIVE_VARIANTS",
    "run_variant",
    "launch_variant",
    "assemble_x",
    "final_residual",
    "make_problem",
    "row_partition",
    "serial_cg",
    "synthetic_spd",
    "serena_like",
    "queen_like",
    "MATRICES",
]

NATIVE_VARIANTS = {
    "mpi-native": native_mpi.run,
    "gpuccl-native": native_gpuccl.run,
    "gpushmem-host-native": native_gpushmem_host.run,
    "gpushmem-device-native": native_gpushmem_device.run,
}


def run_variant(rank_ctx: RankContext, variant: str, cfg: CgConfig, problem: CgProblem,
                collect: bool = False) -> CgResult:
    """Dispatch one rank's CG run by variant name (same scheme as Jacobi).

    ``elastic:<backend>`` selects the shrink-and-replay recovery variant
    (docs/FAULTS.md).
    """
    if variant in NATIVE_VARIANTS:
        return NATIVE_VARIANTS[variant](rank_ctx, cfg, problem, collect=collect)
    parts = variant.split(":")
    if parts[0] == "elastic" and len(parts) == 2:
        return elastic.run(rank_ctx, cfg, problem, backend=parts[1], collect=collect)
    if parts[0] != "uniconn" or len(parts) not in (2, 3):
        raise ValueError(f"unknown cg variant {variant!r}")
    backend = parts[1]
    mode = parts[2] if len(parts) == 3 else "PureHost"
    return uniconn.run(rank_ctx, cfg, problem, backend=backend, launch_mode=mode, collect=collect)


def launch_variant(
    variant: str,
    cfg: CgConfig,
    nranks: int,
    *legacy,
    machine: str = "perlmutter",
    problem: CgProblem = None,
    collect: bool = False,
    stats_out: Optional[dict] = None,
    tracer: Optional[Tracer] = None,
    fault_plan=None,
    fault_seed: Optional[int] = None,
    obs: Optional[str] = None,
    trace_out: Optional[str] = None,
    sanitize=None,
    coll=None,
    capture: Optional[str] = None,
):
    """Launch a whole CG job for one variant; returns the RunReport.

    Everything after ``(variant, cfg, nranks)`` is keyword-only and the
    keyword set mirrors Jacobi's ``launch_variant`` / ``jacobi2d.launch_2d``
    so the chaos sweep drives all apps identically (the old positional
    ``machine/problem/collect`` spelling works through a warn-once
    deprecation shim). ``stats_out`` is deprecated: read ``report.stats``.
    """
    if legacy:
        warn_once(
            "cg.launch_variant.positional",
            "launch_variant(variant, cfg, nranks, machine, problem, collect) "
            "with positional options is deprecated; pass them by keyword",
        )
        if len(legacy) > 3:
            raise TypeError("launch_variant() takes at most 6 positional arguments")
        machine = legacy[0]
        if len(legacy) > 1:
            problem = legacy[1]
        if len(legacy) > 2:
            collect = legacy[2]
    if problem is None:
        problem = make_problem(cfg)
    report = launch(run_variant, nranks, machine=machine, args=(variant, cfg, problem, collect),
                    tracer=tracer, fault_plan=fault_plan, fault_seed=fault_seed,
                    obs=obs, trace_out=trace_out, sanitize=sanitize, coll=coll,
                    capture=capture)
    if stats_out is not None:
        warn_once(
            "launch_variant.stats_out",
            "launch_variant(stats_out=...) is deprecated; use the returned "
            "RunReport's .stats attribute instead",
        )
        stats_out.update(report.stats)
    return report
