"""Shared scaffolding for the CG variants: state setup, timing, results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ...gpu import GpuEvent, elapsed
from ...launcher import RankContext
from ...sim.capture import loop_region
from .solver import CgConfig, CgProblem, CgState, make_problem, row_partition

__all__ = ["CgResult", "setup_state", "measure_cg", "assemble_x"]


@dataclass
class CgResult:
    rank: int
    nranks: int
    total_time: float
    time_per_iter: float
    x_local: Optional[np.ndarray] = None
    restarts: int = 0  # recovery replays (elastic variant only)


def setup_state(
    rank_ctx: RankContext,
    problem: CgProblem,
    alloc_comm: Callable,
) -> CgState:
    """Partition the matrix and allocate/initialize all solver buffers.

    ``alloc_comm(count)`` must allocate float64 communication memory (plain
    or symmetric); local-only vectors are plain device memory.
    """
    me, p = rank_ctx.rank, rank_ctx.world_size
    device = rank_ctx.require_device()
    n = problem.a.shape[0]
    counts, displs = row_partition(n, p)
    lo, cnt = displs[me], counts[me]
    a_local = problem.a[lo : lo + cnt, :].tocsr()
    b_local = problem.b[lo : lo + cnt]

    state = CgState(
        a_local=a_local,
        p_full=alloc_comm(n),
        q=device.malloc(cnt, np.float64),
        x=device.malloc(cnt, np.float64),
        r=device.malloc(cnt, np.float64),
        pq=alloc_comm(1),
        rs=alloc_comm(1),
        rs_new=alloc_comm(1),
        counts=counts,
        displs=displs,
        me=me,
    )
    # x = 0; r = b; p = r. The initial global <r,r> is reduced by the
    # variant (its own AllReduce) before the timed loop.
    state.r.write(b_local)
    state.p_local_view()[:] = b_local
    state.rs.data[0] = float(b_local @ b_local)  # local part, pre-reduce
    return state


def measure_cg(
    rank_ctx: RankContext,
    cfg: CgConfig,
    stream,
    iteration: Callable[[], None],
    barrier: Callable[[], None],
    collect: bool,
    state: CgState,
) -> CgResult:
    """Time ``cfg.iters`` iterations with GPU events (paper: no warm-up)."""
    device = rank_ctx.require_device()
    barrier()
    stream.synchronize()
    # CG's scalar recurrences (alpha/beta from evolving dot products) make
    # its payload pattern iteration-dependent: the region fingerprints the
    # loop but never replays it (replay_safe=False).
    region = loop_region(
        rank_ctx.engine, "cg.iterate", replay_safe=False, parity=1, min_period=2
    )
    start, end = GpuEvent(device, "cg-start"), GpuEvent(device, "cg-end")
    start.record(stream)
    i = 0
    while i < cfg.iters:
        i += region.boundary(rank_ctx.rank, i, cfg.iters)
        if i >= cfg.iters:
            break
        iteration()
        i += 1
    end.record(stream)
    end.synchronize()
    total = elapsed(start, end)
    return CgResult(
        rank=rank_ctx.rank,
        nranks=rank_ctx.world_size,
        total_time=total,
        time_per_iter=total / cfg.iters,
        x_local=state.x.read() if collect else None,
    )


def assemble_x(results: List[CgResult], n: int) -> np.ndarray:
    """Glue per-rank solution segments back together."""
    counts, displs = row_partition(n, len(results))
    x = np.zeros(n)
    for res in results:
        x[displs[res.rank] : displs[res.rank] + counts[res.rank]] = res.x_local
    return x
