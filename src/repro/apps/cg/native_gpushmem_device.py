"""Native GPUSHMEM CG, device API: one resident kernel per iteration does
the whole step — device puts for the p exchange, device barrier, SpMV and
vector updates, device-side AllReduce for both dot products. The CPU only
launches and swaps nothing (following the CPU-free scheme of [37])."""

from __future__ import annotations

import numpy as np

from ...backends.gpushmem import ShmemContext
from ...gpu import dim3
from ...gpu.kernel import device_kernel
from ...launcher import RankContext
from .harness import CgResult, measure_cg, setup_state
from .solver import CgConfig, CgProblem, CgState, _spmv_cost, _vec_cost_factory


@device_kernel(name="cg_dev_step")
def _cg_dev_step(ctx, state: CgState, p: int, me: int) -> None:
    shmem = ctx.shmem
    # AllGatherv of the search direction: put my window to every other PE
    # (a self-put would race with the forward puts reading the window).
    window = state.p_full.offset_by(state.my_offset, state.n_local)
    for shift in range(1, p):
        pe = (me + shift) % p
        shmem.put_nbi(window, window, state.n_local, pe, group="block")
    shmem.quiet()
    shmem.barrier_all()
    # SpMV + first dot.
    ctx.compute(_spmv_cost(ctx, state))
    state.q.data[:] = state.a_local @ state.p_full.data
    state.pq.data[0] = float(state.p_local_view() @ state.q.data)
    shmem.allreduce(state.pq, state.pq, 1, "sum")
    # alpha update + second dot.
    ctx.compute(_vec_cost_factory(6)(ctx, state))
    alpha = state.rs.data[0] / state.pq.data[0]
    state.x.data[:] += alpha * state.p_local_view()
    state.r.data[:] -= alpha * state.q.data
    state.rs_new.data[0] = float(state.r.data @ state.r.data)
    shmem.allreduce(state.rs_new, state.rs_new, 1, "sum")
    # beta update.
    ctx.compute(_vec_cost_factory(4)(ctx, state))
    beta = state.rs_new.data[0] / state.rs.data[0]
    p_local = state.p_local_view()
    p_local[:] = state.r.data + beta * p_local
    state.rs.data[0] = state.rs_new.data[0]


def run(rank_ctx: RankContext, cfg: CgConfig, problem: CgProblem, collect: bool = False) -> CgResult:
    """Run the native GPUSHMEM device-API CG on this rank."""
    rank_ctx.set_device(rank_ctx.node_rank)
    shmem = ShmemContext(rank_ctx)
    device = rank_ctx.require_device()
    stream = device.create_stream()
    state = setup_state(rank_ctx, problem, alloc_comm=lambda n: shmem.malloc(n, np.float64))
    grid, block = dim3(min(32, max(1, state.n_local // 256))), dim3(256)

    shmem.allreduce(state.rs, state.rs, 1, "sum")

    def iteration() -> None:
        shmem.collective_launch(_cg_dev_step, grid, block,
                                args=(state, shmem.n_pes, shmem.my_pe), stream=stream)

    return measure_cg(rank_ctx, cfg, stream, iteration, shmem.barrier_all, collect, state)
