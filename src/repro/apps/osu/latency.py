"""OSU-style latency (ping-pong) benchmark, native and Uniconn variants.

Two ranks; rank 0 sends ``n`` bytes, rank 1 returns them; the one-way
latency is half the averaged round trip. Host variants drive the exchange
from the CPU (stream-ordered where the library supports it); the device
variants run the *entire* ping-pong loop inside one resident kernel, which
is what makes device-initiated small-message latency so low intra-node
(paper Fig. 2/3).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ...backends import gpuccl as _ccl
from ...backends.gpuccl import GpucclComm, get_unique_id
from ...backends.gpushmem import ShmemContext
from ...backends.mpi import MpiContext
from ...bench.timing import paper_mean
from ...core import Communicator, Coordinator, Environment, LaunchMode, Memory
from ...gpu.kernel import device_kernel
from ...launcher import RankContext
from .config import OsuConfig

__all__ = ["LATENCY_VARIANTS", "run_latency"]


def _count(nbytes: int) -> int:
    return max(1, nbytes // 4)  # float32 elements


def _measure(engine, cfg: OsuConfig, nbytes: int, one_round, sync=None) -> float:
    """Run warmup + timed rounds, repeated per the paper's methodology."""
    iters, warmup = cfg.iters_for(nbytes)
    samples = []
    for _ in range(cfg.repeats):
        for it in range(warmup):
            one_round()
        if sync:
            sync()
        t0 = engine.now
        for it in range(iters):
            one_round()
        if sync:
            sync()
        samples.append((engine.now - t0) / iters / 2.0)  # one-way
    return paper_mean(samples)


# --------------------------------------------------------------------- #
# Native variants.
# --------------------------------------------------------------------- #


def latency_mpi_native(ctx: RankContext, cfg: OsuConfig) -> Dict[int, float]:
    """Native MPI ping-pong latency."""
    ctx.set_device(ctx.node_rank)
    mpi = MpiContext(ctx)
    comm = mpi.comm_world
    device = ctx.require_device()
    out = {}
    for nbytes in cfg.sizes:
        n = _count(nbytes)
        buf = device.malloc(n, np.float32)
        peer = 1 - comm.rank

        def one_round():
            if comm.rank == 0:
                comm.send(buf, n, peer)
                comm.recv(buf, n, peer)
            else:
                comm.recv(buf, n, peer)
                comm.send(buf, n, peer)

        out[nbytes] = _measure(ctx.engine, cfg, nbytes, one_round)
        device.free(buf)
    mpi.finalize()
    return out if ctx.rank == 0 else None


def latency_gpuccl_native(ctx: RankContext, cfg: OsuConfig) -> Dict[int, float]:
    """Native GPUCCL ping-pong latency (stream-ordered)."""
    ctx.set_device(ctx.node_rank)
    mpi = MpiContext(ctx)
    token = np.zeros(1, np.int64)
    if ctx.rank == 0:
        token[0] = get_unique_id().value
    mpi.comm_world.bcast(token, 1, root=0)
    uid = _ccl.GpucclUniqueId.__new__(_ccl.GpucclUniqueId)
    uid.value = int(token[0])
    comm = GpucclComm(ctx, uid, 2, ctx.rank)
    device = ctx.require_device()
    stream = device.create_stream()
    out = {}
    for nbytes in cfg.sizes:
        n = _count(nbytes)
        buf = device.malloc(n, np.float32)
        peer = 1 - comm.rank

        def one_round():
            if comm.rank == 0:
                comm.send(buf, n, peer, stream)
                comm.recv(buf, n, peer, stream)
            else:
                comm.recv(buf, n, peer, stream)
                comm.send(buf, n, peer, stream)

        out[nbytes] = _measure(ctx.engine, cfg, nbytes, one_round, sync=stream.synchronize)
        device.free(buf)
    mpi.finalize()
    return out if ctx.rank == 0 else None


def latency_gpushmem_host_native(ctx: RankContext, cfg: OsuConfig) -> Dict[int, float]:
    """Native GPUSHMEM host-API ping-pong latency."""
    ctx.set_device(ctx.node_rank)
    shmem = ShmemContext(ctx)
    device = ctx.require_device()
    stream = device.create_stream()
    me, peer = shmem.my_pe, 1 - shmem.my_pe
    out = {}
    for nbytes in cfg.sizes:
        n = _count(nbytes)
        data = shmem.malloc(n, np.float32)
        sig = shmem.malloc(2, np.uint64)
        seq = {"it": 0}

        def one_round():
            seq["it"] += 1
            it = seq["it"]
            if me == 0:
                shmem.put_signal_on_stream(data, data, n, sig.offset_by(0, 1), it, peer, stream)
                shmem.signal_wait_until_on_stream(sig.offset_by(1, 1), "ge", it, stream)
            else:
                shmem.signal_wait_until_on_stream(sig.offset_by(0, 1), "ge", it, stream)
                shmem.put_signal_on_stream(data, data, n, sig.offset_by(1, 1), it, peer, stream)

        out[nbytes] = _measure(ctx.engine, cfg, nbytes, one_round, sync=stream.synchronize)
        shmem.barrier_all()
        shmem.free(sig)
        shmem.free(data)
    return out if ctx.rank == 0 else None


@device_kernel(name="osu_lat_dev")
def _latency_dev_kernel(ctx, data, sig, n, rounds, me, peer, out_times) -> None:
    shmem = ctx.shmem
    engine = shmem.engine
    t0 = engine.now
    for it in range(1, rounds + 1):
        if me == 0:
            shmem.put_signal_nbi(data, data, n, sig.offset_by(0, 1), it, peer)
            shmem.signal_wait_until(sig.offset_by(1, 1), "ge", it)
        else:
            shmem.signal_wait_until(sig.offset_by(0, 1), "ge", it)
            shmem.put_signal_nbi(data, data, n, sig.offset_by(1, 1), it, peer)
    out_times.append(engine.now - t0)


def latency_gpushmem_device_native(ctx: RankContext, cfg: OsuConfig) -> Dict[int, float]:
    """Native GPUSHMEM device-API latency (loop inside one kernel)."""
    ctx.set_device(ctx.node_rank)
    shmem = ShmemContext(ctx)
    device = ctx.require_device()
    stream = device.create_stream()
    me, peer = shmem.my_pe, 1 - shmem.my_pe
    out = {}
    for nbytes in cfg.sizes:
        n = _count(nbytes)
        data = shmem.malloc(n, np.float32)
        sig = shmem.malloc(2, np.uint64)
        iters, warmup = cfg.iters_for(nbytes)
        samples = []
        def reset_signals():
            # Each kernel counts rounds from 1 against persistent signal
            # words, so they are zeroed (with fencing barriers) per launch.
            shmem.barrier_all()
            sig.write(np.zeros(2, np.uint64))
            shmem.barrier_all()

        for _ in range(cfg.repeats):
            times = []
            # Warmup rounds, then timed rounds, each inside ONE resident kernel.
            shmem.collective_launch(_latency_dev_kernel, 1, 128,
                                    (data, sig, n, warmup, me, peer, []), stream)
            stream.synchronize()
            reset_signals()
            shmem.collective_launch(_latency_dev_kernel, 1, 128,
                                    (data, sig, n, iters, me, peer, times), stream)
            stream.synchronize()
            samples.append(times[0] / iters / 2.0)
            reset_signals()
        out[nbytes] = paper_mean(samples)
        shmem.free(sig)
        shmem.free(data)
    return out if ctx.rank == 0 else None


# --------------------------------------------------------------------- #
# Uniconn variants (one code path; backend/mode are parameters).
# --------------------------------------------------------------------- #


def _latency_uniconn_host(ctx: RankContext, cfg: OsuConfig, backend: str) -> Dict[int, float]:
    env = Environment(ctx, backend=backend)
    env.set_device(env.node_rank())
    comm = Communicator(env)
    stream = env.device.create_stream()
    coord = Coordinator(env, stream=stream, launch_mode="PureHost")
    me, peer = comm.global_rank(), 1 - comm.global_rank()
    out = {}
    for nbytes in cfg.sizes:
        n = _count(nbytes)
        data = Memory.alloc(env, n, dtype=np.float32)
        rbuf = Memory.alloc(env, n, dtype=np.float32)
        sig = Memory.alloc(env, 2, dtype=np.uint64) if coord.uses_signals else None
        seq = {"it": 0}

        def one_round():
            seq["it"] += 1
            it = seq["it"]
            s0 = sig.offset_by(0, 1) if sig is not None else None
            s1 = sig.offset_by(1, 1) if sig is not None else None
            if me == 0:
                coord.post(data, rbuf, n, s0, it, peer, comm)
                coord.acknowledge(rbuf, n, s1, it, peer, comm)
            else:
                coord.acknowledge(rbuf, n, s0, it, peer, comm)
                coord.post(data, rbuf, n, s1, it, peer, comm)

        out[nbytes] = _measure(ctx.engine, cfg, nbytes, one_round, sync=stream.synchronize)
        comm.barrier(stream=stream)
        stream.synchronize()
        if sig is not None:
            Memory.free(env, sig)
        Memory.free(env, rbuf)
        Memory.free(env, data)
    env.close()
    return out if ctx.rank == 0 else None


@device_kernel(name="osu_lat_uniconn_dev")
def _latency_uniconn_dev_kernel(ctx, data, rbuf, sig, n, rounds, comm_d, out_times) -> None:
    u = ctx.uniconn
    engine = u.engine
    me = comm_d.rank
    peer = 1 - me
    t0 = engine.now
    for it in range(1, rounds + 1):
        if me == 0:
            u.post(data, rbuf, n, sig.offset_by(0, 1), it, peer, comm_d)
            u.acknowledge(rbuf, n, sig.offset_by(1, 1), it, peer, comm_d)
        else:
            u.acknowledge(rbuf, n, sig.offset_by(0, 1), it, peer, comm_d)
            u.post(data, rbuf, n, sig.offset_by(1, 1), it, peer, comm_d)
    out_times.append(engine.now - t0)


def _latency_uniconn_device(ctx: RankContext, cfg: OsuConfig) -> Dict[int, float]:
    env = Environment(ctx, backend="gpushmem")
    env.set_device(env.node_rank())
    comm = Communicator(env)
    stream = env.device.create_stream()
    coord = Coordinator(env, stream=stream, launch_mode="PureDevice")
    comm_d = comm.to_device()
    out = {}
    for nbytes in cfg.sizes:
        n = _count(nbytes)
        data = Memory.alloc(env, n, dtype=np.float32)
        rbuf = Memory.alloc(env, n, dtype=np.float32)
        sig = Memory.alloc(env, 2, dtype=np.uint64)
        iters, warmup = cfg.iters_for(nbytes)
        samples = []
        def reset_signals():
            comm.barrier()
            sig.write(np.zeros(2, np.uint64))
            comm.barrier()

        for _ in range(cfg.repeats):
            times = []
            coord.bind_kernel(LaunchMode.PureDevice, _latency_uniconn_dev_kernel, 1, 128,
                              args=(data, rbuf, sig, n, warmup, comm_d, []))
            coord.launch_kernel()
            stream.synchronize()
            reset_signals()
            coord.bind_kernel(LaunchMode.PureDevice, _latency_uniconn_dev_kernel, 1, 128,
                              args=(data, rbuf, sig, n, iters, comm_d, times))
            coord.launch_kernel()
            stream.synchronize()
            samples.append(times[0] / iters / 2.0)
            reset_signals()
        out[nbytes] = paper_mean(samples)
        Memory.free(env, sig)
        Memory.free(env, rbuf)
        Memory.free(env, data)
    env.close()
    return out if ctx.rank == 0 else None


LATENCY_VARIANTS = {
    "mpi-native": latency_mpi_native,
    "gpuccl-native": latency_gpuccl_native,
    "gpushmem-host-native": latency_gpushmem_host_native,
    "gpushmem-device-native": latency_gpushmem_device_native,
    "uniconn:mpi": lambda c, cfg: _latency_uniconn_host(c, cfg, "mpi"),
    "uniconn:gpuccl": lambda c, cfg: _latency_uniconn_host(c, cfg, "gpuccl"),
    "uniconn:gpushmem": lambda c, cfg: _latency_uniconn_host(c, cfg, "gpushmem"),
    "uniconn:gpushmem-device": lambda c, cfg: _latency_uniconn_device(c, cfg),
    # Experimental one-sided MPI path (paper Section V-A future work).
    "uniconn:mpi-rma": lambda c, cfg: _latency_uniconn_host(c, cfg, "mpi"),
}


def run_latency(variant: str, cfg: OsuConfig = None, machine: str = "perlmutter",
                inter_node: bool = False) -> Dict[int, float]:
    """Run one latency variant on 2 GPUs; returns {bytes: seconds}."""
    from ...config import configured
    from ...launcher import launch

    cfg = cfg or OsuConfig()
    try:
        fn = LATENCY_VARIANTS[variant]
    except KeyError:
        raise ValueError(
            f"unknown latency variant {variant!r}; known: {sorted(LATENCY_VARIANTS)}"
        ) from None
    kwargs = dict(machine=machine)
    if inter_node:
        kwargs.update(n_nodes=2, placement="spread")
    with configured(mpi_rma=(variant == "uniconn:mpi-rma")):
        results = launch(fn, 2, args=(cfg,), **kwargs)
    return results[0]
