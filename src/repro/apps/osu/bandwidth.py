"""OSU-style one-way bandwidth benchmark (windowed), native and Uniconn.

Rank 0 injects a window of concurrent messages (paper: 64), rank 1 returns
a tiny acknowledgment; bandwidth = window x size x iterations / elapsed.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ...backends import gpuccl as _ccl
from ...backends.gpuccl import GpucclComm, get_unique_id
from ...backends.gpushmem import ShmemContext
from ...backends.mpi import MpiContext, waitall
from ...bench.timing import paper_mean
from ...core import Communicator, Coordinator, Environment, Memory
from ...gpu.kernel import device_kernel
from ...launcher import RankContext
from .config import OsuConfig

__all__ = ["BANDWIDTH_VARIANTS", "run_bandwidth"]


def _count(nbytes: int) -> int:
    return max(1, nbytes // 4)


def _measure_bw(engine, cfg: OsuConfig, nbytes: int, one_round, sync=None) -> float:
    iters, warmup = cfg.iters_for(nbytes)
    samples = []
    for _ in range(cfg.repeats):
        for _ in range(warmup):
            one_round()
        if sync:
            sync()
        t0 = engine.now
        for _ in range(iters):
            one_round()
        if sync:
            sync()
        elapsed = engine.now - t0
        samples.append(cfg.window * nbytes * iters / elapsed)
    return paper_mean(samples)


def bandwidth_mpi_native(ctx: RankContext, cfg: OsuConfig) -> Dict[int, float]:
    """Native MPI windowed bandwidth (isend window + ack)."""
    ctx.set_device(ctx.node_rank)
    mpi = MpiContext(ctx)
    comm = mpi.comm_world
    device = ctx.require_device()
    out = {}
    ack = device.malloc(1, np.float32)
    for nbytes in cfg.sizes:
        n = _count(nbytes)
        bufs = [device.malloc(n, np.float32) for _ in range(cfg.window)]
        peer = 1 - comm.rank

        def one_round():
            if comm.rank == 0:
                waitall([comm.isend(b, n, peer) for b in bufs])
                comm.recv(ack, 1, peer, tag=9)
            else:
                waitall([comm.irecv(b, n, peer) for b in bufs])
                comm.send(ack, 1, peer, tag=9)

        out[nbytes] = _measure_bw(ctx.engine, cfg, nbytes, one_round)
        for b in bufs:
            device.free(b)
    mpi.finalize()
    return out if ctx.rank == 0 else None


def bandwidth_gpuccl_native(ctx: RankContext, cfg: OsuConfig) -> Dict[int, float]:
    """Native GPUCCL windowed bandwidth (grouped sends + ack)."""
    ctx.set_device(ctx.node_rank)
    mpi = MpiContext(ctx)
    token = np.zeros(1, np.int64)
    if ctx.rank == 0:
        token[0] = get_unique_id().value
    mpi.comm_world.bcast(token, 1, root=0)
    uid = _ccl.GpucclUniqueId.__new__(_ccl.GpucclUniqueId)
    uid.value = int(token[0])
    comm = GpucclComm(ctx, uid, 2, ctx.rank)
    device = ctx.require_device()
    stream = device.create_stream()
    ack = device.malloc(1, np.float32)
    out = {}
    for nbytes in cfg.sizes:
        n = _count(nbytes)
        bufs = [device.malloc(n, np.float32) for _ in range(cfg.window)]
        peer = 1 - comm.rank

        def one_round():
            _ccl.group_start()
            for b in bufs:
                if comm.rank == 0:
                    comm.send(b, n, peer, stream)
                else:
                    comm.recv(b, n, peer, stream)
            _ccl.group_end()
            if comm.rank == 0:
                comm.recv(ack, 1, peer, stream)
            else:
                comm.send(ack, 1, peer, stream)

        out[nbytes] = _measure_bw(ctx.engine, cfg, nbytes, one_round, sync=stream.synchronize)
        for b in bufs:
            device.free(b)
    mpi.finalize()
    return out if ctx.rank == 0 else None


def bandwidth_gpushmem_host_native(ctx: RankContext, cfg: OsuConfig) -> Dict[int, float]:
    """Native GPUSHMEM host-API bandwidth (stream puts + signal)."""
    ctx.set_device(ctx.node_rank)
    shmem = ShmemContext(ctx)
    device = ctx.require_device()
    stream = device.create_stream()
    me, peer = shmem.my_pe, 1 - shmem.my_pe
    out = {}
    for nbytes in cfg.sizes:
        n = _count(nbytes)
        data = shmem.malloc(n * cfg.window, np.float32)
        sig = shmem.malloc(2, np.uint64)
        seq = {"it": 0}

        def one_round():
            seq["it"] += 1
            it = seq["it"]
            if me == 0:
                for w in range(cfg.window - 1):
                    shmem.put_on_stream(data.offset_by(w * n, n), data.offset_by(w * n, n),
                                        n, peer, stream)
                last = (cfg.window - 1) * n
                shmem.put_signal_on_stream(data.offset_by(last, n), data.offset_by(last, n),
                                           n, sig.offset_by(0, 1), it, peer, stream)
                shmem.signal_wait_until_on_stream(sig.offset_by(1, 1), "ge", it, stream)
            else:
                shmem.signal_wait_until_on_stream(sig.offset_by(0, 1), "ge", it, stream)
                shmem.put_signal_on_stream(data.offset_by(0, 1), data.offset_by(0, 1), 0,
                                           sig.offset_by(1, 1), it, peer, stream)

        out[nbytes] = _measure_bw(ctx.engine, cfg, nbytes, one_round, sync=stream.synchronize)
        shmem.barrier_all()
        shmem.free(sig)
        shmem.free(data)
    return out if ctx.rank == 0 else None


@device_kernel(name="osu_bw_dev")
def _bw_dev_kernel(ctx, data, sig, n, window, rounds, me, peer, out_times) -> None:
    shmem = ctx.shmem
    engine = shmem.engine
    t0 = engine.now
    for it in range(1, rounds + 1):
        if me == 0:
            for w in range(window):
                shmem.put_nbi(data.offset_by(w * n, n), data.offset_by(w * n, n), n, peer)
            shmem.quiet()
            shmem.put_signal_nbi(data.offset_by(0, 1), data.offset_by(0, 1), 0,
                                 sig.offset_by(0, 1), it, peer)
            shmem.signal_wait_until(sig.offset_by(1, 1), "ge", it)
        else:
            shmem.signal_wait_until(sig.offset_by(0, 1), "ge", it)
            shmem.put_signal_nbi(data.offset_by(0, 1), data.offset_by(0, 1), 0,
                                 sig.offset_by(1, 1), it, peer)
    out_times.append(engine.now - t0)


def bandwidth_gpushmem_device_native(ctx: RankContext, cfg: OsuConfig) -> Dict[int, float]:
    """Native GPUSHMEM device-API bandwidth (resident kernel)."""
    ctx.set_device(ctx.node_rank)
    shmem = ShmemContext(ctx)
    device = ctx.require_device()
    stream = device.create_stream()
    me, peer = shmem.my_pe, 1 - shmem.my_pe
    out = {}
    for nbytes in cfg.sizes:
        n = _count(nbytes)
        data = shmem.malloc(n * cfg.window, np.float32)
        sig = shmem.malloc(2, np.uint64)
        iters, warmup = cfg.iters_for(nbytes)

        def reset_signals():
            shmem.barrier_all()
            sig.write(np.zeros(2, np.uint64))
            shmem.barrier_all()

        samples = []
        for _ in range(cfg.repeats):
            times = []
            shmem.collective_launch(_bw_dev_kernel, 1, 128,
                                    (data, sig, n, cfg.window, warmup, me, peer, []), stream)
            stream.synchronize()
            reset_signals()
            shmem.collective_launch(_bw_dev_kernel, 1, 128,
                                    (data, sig, n, cfg.window, iters, me, peer, times), stream)
            stream.synchronize()
            samples.append(cfg.window * nbytes * iters / times[0])
            reset_signals()
        out[nbytes] = paper_mean(samples)
        shmem.free(sig)
        shmem.free(data)
    return out if ctx.rank == 0 else None


def _bandwidth_uniconn_host(ctx: RankContext, cfg: OsuConfig, backend: str) -> Dict[int, float]:
    env = Environment(ctx, backend=backend)
    env.set_device(env.node_rank())
    comm = Communicator(env)
    stream = env.device.create_stream()
    coord = Coordinator(env, stream=stream, launch_mode="PureHost")
    me, peer = comm.global_rank(), 1 - comm.global_rank()
    has_sig = env.backend.supports_device_api
    out = {}
    for nbytes in cfg.sizes:
        n = _count(nbytes)
        data = Memory.alloc(env, n * cfg.window, dtype=np.float32)
        rbuf = Memory.alloc(env, n * cfg.window, dtype=np.float32)
        sig = Memory.alloc(env, 2, dtype=np.uint64) if has_sig else None
        seq = {"it": 0}

        def one_round():
            seq["it"] += 1
            it = seq["it"]
            base = it * cfg.window
            s0 = sig.offset_by(0, 1) if sig is not None else None
            s1 = sig.offset_by(1, 1) if sig is not None else None
            if me == 0:
                coord.comm_start()
                for w in range(cfg.window):
                    coord.post(data.offset_by(w * n, n), rbuf.offset_by(w * n, n), n,
                               s0, base + w, peer, comm)
                coord.comm_end()
                coord.acknowledge(rbuf.offset_by(0, 1), 1, s1, it, peer, comm)
            else:
                coord.comm_start()
                for w in range(cfg.window):
                    coord.acknowledge(rbuf.offset_by(w * n, n), n, s0, base + w, peer, comm)
                coord.comm_end()
                coord.post(data.offset_by(0, 1), rbuf.offset_by(0, 1), 1, s1, it, peer, comm)

        out[nbytes] = _measure_bw(ctx.engine, cfg, nbytes, one_round, sync=stream.synchronize)
        comm.barrier(stream=stream)
        stream.synchronize()
        if sig is not None:
            Memory.free(env, sig)
        Memory.free(env, rbuf)
        Memory.free(env, data)
    env.close()
    return out if ctx.rank == 0 else None


@device_kernel(name="osu_bw_uniconn_dev")
def _bw_uniconn_dev_kernel(ctx, data, rbuf, sig, n, window, rounds, comm_d, out_times) -> None:
    u = ctx.uniconn
    engine = u.engine
    me = comm_d.rank
    peer = 1 - me
    t0 = engine.now
    for it in range(1, rounds + 1):
        if me == 0:
            for w in range(window):
                u.post(data.offset_by(w * n, n), rbuf.offset_by(w * n, n), n,
                       None, 0, peer, comm_d)
            u.quiet()
            u.post(data.offset_by(0, 1), rbuf.offset_by(0, 1), 0,
                   sig.offset_by(0, 1), it, peer, comm_d)
            u.acknowledge(rbuf.offset_by(0, 1), 0, sig.offset_by(1, 1), it, peer, comm_d)
        else:
            u.acknowledge(rbuf.offset_by(0, 1), 0, sig.offset_by(0, 1), it, peer, comm_d)
            u.post(data.offset_by(0, 1), rbuf.offset_by(0, 1), 0,
                   sig.offset_by(1, 1), it, peer, comm_d)
    out_times.append(engine.now - t0)


def _bandwidth_uniconn_device(ctx: RankContext, cfg: OsuConfig) -> Dict[int, float]:
    from ...core import Coordinator, LaunchMode
    from ...bench.timing import paper_mean as _pm

    env = Environment(ctx, backend="gpushmem")
    env.set_device(env.node_rank())
    comm = Communicator(env)
    stream = env.device.create_stream()
    coord = Coordinator(env, stream=stream, launch_mode="PureDevice")
    comm_d = comm.to_device()
    out = {}
    for nbytes in cfg.sizes:
        n = _count(nbytes)
        data = Memory.alloc(env, n * cfg.window, dtype=np.float32)
        rbuf = Memory.alloc(env, n * cfg.window, dtype=np.float32)
        sig = Memory.alloc(env, 2, dtype=np.uint64)
        iters, warmup = cfg.iters_for(nbytes)

        def reset_signals():
            comm.barrier()
            sig.write(np.zeros(2, np.uint64))
            comm.barrier()

        samples = []
        for _ in range(cfg.repeats):
            times = []
            coord.bind_kernel(LaunchMode.PureDevice, _bw_uniconn_dev_kernel, 1, 128,
                              args=(data, rbuf, sig, n, cfg.window, warmup, comm_d, []))
            coord.launch_kernel()
            stream.synchronize()
            reset_signals()
            coord.bind_kernel(LaunchMode.PureDevice, _bw_uniconn_dev_kernel, 1, 128,
                              args=(data, rbuf, sig, n, cfg.window, iters, comm_d, times))
            coord.launch_kernel()
            stream.synchronize()
            samples.append(cfg.window * nbytes * iters / times[0])
            reset_signals()
        out[nbytes] = _pm(samples)
        Memory.free(env, sig)
        Memory.free(env, rbuf)
        Memory.free(env, data)
    env.close()
    return out if ctx.rank == 0 else None


BANDWIDTH_VARIANTS = {
    "mpi-native": bandwidth_mpi_native,
    "gpuccl-native": bandwidth_gpuccl_native,
    "gpushmem-host-native": bandwidth_gpushmem_host_native,
    "gpushmem-device-native": bandwidth_gpushmem_device_native,
    "uniconn:mpi": lambda c, cfg: _bandwidth_uniconn_host(c, cfg, "mpi"),
    "uniconn:gpuccl": lambda c, cfg: _bandwidth_uniconn_host(c, cfg, "gpuccl"),
    "uniconn:gpushmem": lambda c, cfg: _bandwidth_uniconn_host(c, cfg, "gpushmem"),
    "uniconn:gpushmem-device": _bandwidth_uniconn_device,
}


def run_bandwidth(variant: str, cfg: OsuConfig = None, machine: str = "perlmutter",
                  inter_node: bool = False) -> Dict[int, float]:
    """Run one bandwidth variant on 2 GPUs; returns {bytes: bytes/s}."""
    from ...launcher import launch

    cfg = cfg or OsuConfig()
    try:
        fn = BANDWIDTH_VARIANTS[variant]
    except KeyError:
        raise ValueError(
            f"unknown bandwidth variant {variant!r}; known: {sorted(BANDWIDTH_VARIANTS)}"
        ) from None
    kwargs = dict(machine=machine)
    if inter_node:
        kwargs.update(n_nodes=2, placement="spread")
    results = launch(fn, 2, args=(cfg,), **kwargs)
    return results[0]
