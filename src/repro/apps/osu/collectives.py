"""OSU-style collective sweeps (osu_allreduce / osu_allgather and friends).

All ranks run the same collective ``iters`` times per message size and the
slowest rank's averaged time is reported — the OSU collective methodology.
Unlike the ping-pong benchmarks these run at job scale (``--gpus``), which
is where the algorithm choice (docs/COLLECTIVES.md) shows: latency-bound
trees/recursive-doubling win small messages, the bandwidth-optimal ring
wins large ones. ``coll=`` forwards a :mod:`repro.coll` policy, so the same
sweep measures the fixed legacy algorithm, a forced catalogue entry, or the
autotuned selection.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ...bench.timing import paper_mean
from ...core import Communicator, Coordinator, Environment, Memory
from ...launcher import RankContext
from .config import OsuConfig

__all__ = ["COLLECTIVE_KINDS", "run_collective"]

#: Collectives the sweep knows how to drive through the Coordinator.
COLLECTIVE_KINDS = ("all_reduce", "all_gather", "broadcast", "reduce_scatter")


def _count(nbytes: int) -> int:
    return max(1, nbytes // 4)  # float32 elements


def _buffers(env, kind: str, n: int, p: int):
    """(send, recv, rounder) for one collective kind; ``n`` is the per-call
    element count (per rank for all_gather/reduce_scatter, total else)."""
    if kind == "all_gather":
        return Memory.alloc(env, n, dtype=np.float32), \
            Memory.alloc(env, n * p, dtype=np.float32)
    if kind == "reduce_scatter":
        return Memory.alloc(env, n * p, dtype=np.float32), \
            Memory.alloc(env, n, dtype=np.float32)
    return Memory.alloc(env, n, dtype=np.float32), \
        Memory.alloc(env, n, dtype=np.float32)


def _collective_body(ctx: RankContext, cfg: OsuConfig, backend: str,
                     kind: str) -> Dict[int, float]:
    if kind not in COLLECTIVE_KINDS:
        raise ValueError(f"unknown collective kind {kind!r}; "
                         f"known: {COLLECTIVE_KINDS}")
    env = Environment(ctx, backend=backend)
    env.set_device(env.node_rank())
    comm = Communicator(env)
    stream = env.device.create_stream()
    coord = Coordinator(env, stream=stream, launch_mode="PureHost")
    p = comm.global_size()
    engine = ctx.engine
    out = {}
    for nbytes in cfg.sizes:
        n = _count(nbytes)
        send, recv = _buffers(env, kind, n, p)
        send.write(np.full(send.size, float(comm.global_rank() + 1), np.float32))

        def one_round():
            if kind == "all_reduce":
                coord.all_reduce(send, recv, n, "sum", comm)
            elif kind == "all_gather":
                coord.all_gather(send, recv, n, comm)
            elif kind == "broadcast":
                coord.broadcast(recv, n, 0, comm)
            else:
                coord.reduce_scatter(send, recv, n, "sum", comm)

        iters, warmup = cfg.iters_for(nbytes)
        samples = []
        for _ in range(cfg.repeats):
            for _ in range(warmup):
                one_round()
            comm.barrier(stream=stream)
            stream.synchronize()
            t0 = engine.now
            for _ in range(iters):
                one_round()
            stream.synchronize()
            samples.append((engine.now - t0) / iters)
        out[nbytes] = paper_mean(samples)
        comm.barrier(stream=stream)
        stream.synchronize()
        Memory.free(env, recv)
        Memory.free(env, send)
    env.close()
    return out if ctx.rank == 0 else None


def run_collective(backend: str, kind: str, cfg: OsuConfig = None,
                   machine: str = "perlmutter", gpus: int = 8,
                   coll=None) -> Dict[int, float]:
    """Sweep one collective at job scale; returns {bytes: seconds/call}.

    The returned times are the slowest participant's (rank 0 reads the
    synchronized clock after its own barrier, which a collective's
    completion semantics make the job-wide finish time).
    """
    from ...launcher import launch

    cfg = cfg or OsuConfig()
    results = launch(_collective_body, gpus, machine=machine,
                     args=(cfg, backend, kind), coll=coll)
    return results[0]
