"""Configuration for the OSU-style microbenchmarks (paper Section VI-B)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

__all__ = ["OsuConfig", "default_sizes"]


def default_sizes(min_bytes: int = 4, max_bytes: int = 4 << 20) -> List[int]:
    """Power-of-two message sizes, in bytes (float32 elements underneath)."""
    sizes = []
    b = min_bytes
    while b <= max_bytes:
        sizes.append(b)
        b *= 2
    return sizes


@dataclass(frozen=True)
class OsuConfig:
    """Iteration counts follow the paper's scheme (scaled down: the virtual
    clock is deterministic, so far fewer repetitions are needed — the knob
    is here to run paper-scale counts if desired)."""

    sizes: Tuple[int, ...] = tuple(default_sizes())
    small_cutoff: int = 8 * 1024  # bytes; below this use the 'small' counts
    iters_small: int = 40
    warmup_small: int = 4
    iters_large: int = 12
    warmup_large: int = 2
    window: int = 64  # concurrent messages in the bandwidth benchmark
    repeats: int = 3  # paper: 10 repeats, drop min/max, average

    def iters_for(self, nbytes: int) -> Tuple[int, int]:
        """(iterations, warmup) for a message size per the paper's scheme."""
        if nbytes < self.small_cutoff:
            return self.iters_small, self.warmup_small
        return self.iters_large, self.warmup_large
