"""OSU-style network microbenchmarks (latency + windowed bandwidth)."""

from .bandwidth import BANDWIDTH_VARIANTS, run_bandwidth
from .collectives import COLLECTIVE_KINDS, run_collective
from .config import OsuConfig, default_sizes
from .latency import LATENCY_VARIANTS, run_latency

__all__ = [
    "BANDWIDTH_VARIANTS",
    "run_bandwidth",
    "COLLECTIVE_KINDS",
    "run_collective",
    "OsuConfig",
    "default_sizes",
    "LATENCY_VARIANTS",
    "run_latency",
]
