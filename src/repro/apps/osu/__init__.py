"""OSU-style network microbenchmarks (latency + windowed bandwidth)."""

from .bandwidth import BANDWIDTH_VARIANTS, run_bandwidth
from .config import OsuConfig, default_sizes
from .latency import LATENCY_VARIANTS, run_latency

__all__ = [
    "BANDWIDTH_VARIANTS",
    "run_bandwidth",
    "OsuConfig",
    "default_sizes",
    "LATENCY_VARIANTS",
    "run_latency",
]
