"""Elastic Jacobi: survives rank loss by shrinking and re-decomposing.

The recovery-runtime showcase (docs/FAULTS.md, "Elastic recovery"). The
solver runs the same Uniconn halo exchange as :mod:`.uniconn` (PureHost
mode, any backend) wrapped in the ULFM-style cycle of
:class:`~repro.resilience.ElasticLoop`:

- every ``checkpoint_every`` iterations the ranks *stage* a replicated
  in-memory checkpoint — an AllGatherv of the interior rows, so every rank
  holds the full grid on the host. Staged data commits only after the
  iteration's ``agree`` succeeds, so a checkpoint never captures work a
  dead peer half-finished;
- each iteration ends with ``Communicator.agree(not failed)``: a failed
  exchange anywhere (retransmission exhaustion, watchdog timeout, backend
  error, a peer's revocation) or a crashed member fails the vote globally;
- on a failed vote every survivor revokes the communicator, shrinks it,
  re-partitions the grid over the survivor count, refills its slab *and*
  the halo staging slot from the committed checkpoint, builds a fresh
  stream/Coordinator, and replays from the checkpoint iteration. A fault
  with no dead ranks (a transient drop storm) shrinks to the same size —
  rollback-and-replay with a clean communicator.

The 5-point update is order-independent per element, so the final grid is
*bitwise* equal to the serial reference no matter how often the
decomposition changed — and the whole schedule (who dies, when, how many
replays) is deterministic per (fault spec, seed).

Symmetric-heap discipline: all ``Memory`` allocations (halo staging, the
checkpoint gather target, signal words) happen up-front with sizes
independent of the rank count — symmetric allocation is collective, and
after a crash a collective over the old world would hang. Per-generation
slabs ``a``/``anew`` are plain device memory (local, any time).

Signal values are offset by generation (``gen * (iters + 1) + it + 1``) so
a replayed iteration's signal wait can never be satisfied by a stale value
the failed generation already delivered (waits are >=).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ...core import Communicator, Coordinator, Environment, LaunchMode, Memory
from ...launcher import RankContext
from ...resilience import ElasticLoop
from .domain import JacobiConfig, init_global, partition_rows
from .harness import JacobiResult, collect_interior, launch_dims
from .kernels import JacobiState, jacobi_kernel

__all__ = ["run"]


def run(
    rank_ctx: RankContext,
    cfg: JacobiConfig,
    backend: Union[str, type, None] = None,
    collect: bool = False,
    checkpoint_every: int = 8,
    max_recoveries: int = 16,
) -> JacobiResult:
    """Run the elastic Uniconn Jacobi on this rank (any backend)."""
    env = Environment(rank_ctx, backend=backend)
    env.set_device(env.node_rank())
    comm = Communicator(env)
    device = env.device
    engine = rank_ctx.engine
    nx, ny = cfg.nx, cfg.ny
    total_iters = cfg.warmup + cfg.iters

    # ---- Symmetric allocations: up-front, size independent of nranks ---- #
    halo_in = (
        Memory.alloc(env, 2 * nx, dtype=np.float32),
        Memory.alloc(env, 2 * nx, dtype=np.float32),
    )
    bound_out = Memory.alloc(env, 2 * nx, dtype=np.float32)
    ck_buf = Memory.alloc(env, (ny - 2) * nx, dtype=np.float32)  # gathered interior
    needs_sig = Coordinator(env).uses_signals
    sig = Memory.alloc(env, 4, dtype=np.uint64) if needs_sig else None

    # ---- Committed checkpoint: the full grid + its iteration number ---- #
    # Generation 0 commits the initial condition; no communication needed.
    full = init_global(cfg)
    ck_it = [0]
    restarts = [0]

    # Mutable per-generation solver objects, rebuilt on every shrink.
    cur = {}

    def build(comm_now, generation: int) -> None:
        """(Re)build solver state over ``comm_now`` from the committed
        checkpoint. Runs at startup and after every shrink."""
        p, me = comm_now.global_size(), comm_now.global_rank()
        part = partition_rows(cfg, me, p)
        local = full[part.row_start - 1 : part.row_end + 1]
        a = device.malloc(local.size, np.float32)
        anew = device.malloc(local.size, np.float32)
        a.write(local.reshape(-1))
        anew.write(local.reshape(-1))
        state = JacobiState(part, a, anew, halo_in, bound_out, sig, it=ck_it[0])
        # The next kernel unpacks halo_in[it % 2] into the slab's halo rows;
        # refill that slot from the checkpoint (neighbour rows at ck_it).
        slot = np.zeros(2 * nx, np.float32)
        slot[0:nx] = full[part.row_start - 1]
        slot[nx : 2 * nx] = full[part.row_end]
        halo_in[state.parity].write(slot)
        old_stream = cur.get("stream")
        if old_stream is not None:
            # Abandon the failed generation's stream: a late kernel
            # completion from it would write into the shared halo/signal
            # buffers this rebuild just refilled.
            old_stream.abort()
        stream = device.create_stream()
        coord = Coordinator(env, stream=stream, launch_mode=LaunchMode.PureHost)
        grid, block = launch_dims(part)
        coord.bind_kernel(LaunchMode.PureHost, jacobi_kernel, grid, block,
                          args=lambda: (state.freeze(),))
        counts = [partition_rows(cfg, r, p).chunk * nx for r in range(p)]
        displs = [sum(counts[:r]) for r in range(p)]
        cur.update(state=state, stream=stream, coord=coord,
                   counts=counts, displs=displs, generation=generation)
        # No barrier here on purpose: the consensus behind agree/shrink
        # already synchronized the survivors, and a collective in the
        # rebuild path would turn a second crash into an unrecoverable
        # hang instead of the next iteration's failed vote.

    loop = ElasticLoop(comm, build, max_recoveries=max_recoveries, label="jacobi-elastic")
    build(comm, 0)

    staged = {"grid": None, "it": -1}

    def body() -> None:
        """One recoverable iteration: optional checkpoint staging, kernel,
        halo exchange; synchronizes the stream so failures surface here."""
        state, coord, stream = cur["state"], cur["coord"], cur["stream"]
        part = state.part
        staged["it"] = -1
        if state.it % checkpoint_every == 0 and state.it != ck_it[0]:
            interior = state.a.offset(nx, part.chunk * nx)
            coord.all_gather_v(interior, part.chunk * nx, ck_buf,
                               cur["counts"], cur["displs"], loop.comm)
            stream.synchronize()
            staged["grid"] = ck_buf.read().copy()
            staged["it"] = state.it
        coord.launch_kernel()
        nxt = (state.it + 1) % 2
        val = cur["generation"] * (total_iters + 1) + state.it + 1
        halo, out = state.halo_in[nxt], state.bound_out
        sig_from_top = sig.offset_by(2 * nxt + 0, 1) if sig is not None else None
        sig_from_bot = sig.offset_by(2 * nxt + 1, 1) if sig is not None else None
        coord.comm_start()
        if part.has_top:
            coord.post(out.offset_by(0, nx), halo.offset_by(nx, nx), nx,
                       sig_from_bot, val, part.top, loop.comm)
        if part.has_bottom:
            coord.post(out.offset_by(nx, nx), halo.offset_by(0, nx), nx,
                       sig_from_top, val, part.bottom, loop.comm)
        if part.has_top:
            coord.acknowledge(halo.offset_by(0, nx), nx, sig_from_top, val,
                              part.top, loop.comm)
        if part.has_bottom:
            coord.acknowledge(halo.offset_by(nx, nx), nx, sig_from_bot, val,
                              part.bottom, loop.comm)
        coord.comm_end()
        stream.synchronize()

    def step() -> None:
        """One committed iteration (replays transparently on recovery)."""
        if loop.run_step(body):
            if staged["it"] >= 0:
                full[1:-1] = staged["grid"].reshape(ny - 2, nx)
                ck_it[0] = staged["it"]
            cur["state"].swap()
        else:
            restarts[0] += 1

    while cur["state"].it < cfg.warmup:
        step()
    cur["stream"].synchronize()
    t0 = engine.now
    while cur["state"].it < total_iters:
        step()
    cur["stream"].synchronize()
    total = engine.now - t0

    state = cur["state"]
    result = JacobiResult(
        rank=loop.comm.global_rank(),
        nranks=loop.comm.global_size(),
        total_time=total,
        time_per_iter=total / cfg.iters,
        interior=collect_interior(state) if collect else None,
        restarts=restarts[0],
    )
    if loop.generation == 0:
        env.close()  # fault-free path: the paper's collective RAII teardown
    else:
        env.release()  # survivors must not run a collective finalize
    return result
