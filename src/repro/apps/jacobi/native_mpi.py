"""Native GPU-aware-MPI Jacobi (the paper's Listing 1).

Per iteration: launch the compute kernel, synchronize the stream (MPI has
no stream integration), exchange halos with nonblocking send/recv pairs,
wait for all of them, swap.
"""

from __future__ import annotations

import numpy as np

from ...backends.mpi import MpiContext, waitall
from ...launcher import RankContext
from .domain import JacobiConfig
from .harness import JacobiResult, collect_interior, launch_dims, make_state, measure_loop
from .kernels import jacobi_kernel


def run(rank_ctx: RankContext, cfg: JacobiConfig, collect: bool = False) -> JacobiResult:
    """Run the native GPU-aware-MPI Jacobi on this rank."""
    rank_ctx.set_device(rank_ctx.node_rank)
    mpi = MpiContext(rank_ctx)
    comm = mpi.comm_world
    device = rank_ctx.require_device()
    stream = device.create_stream()

    state = make_state(rank_ctx, cfg, alloc_comm=lambda n: device.malloc(n, np.float32))
    part = state.part
    nx = cfg.nx
    grid, block = launch_dims(part)

    def step() -> None:
        device.launch(jacobi_kernel, grid, block, args=(state.freeze(),), stream=stream)
        stream.synchronize()
        nxt = (state.it + 1) % 2
        halo = state.halo_in[nxt]
        out = state.bound_out
        # Sends first, then receives: boundary rows leave as early as
        # possible so neighbours' waits complete sooner (the same schedule
        # Uniconn's Post-then-Acknowledge pattern produces).
        reqs = []
        if part.has_top:
            reqs.append(comm.isend(out.offset(0, nx), nx, part.top, tag=0))
        if part.has_bottom:
            reqs.append(comm.isend(out.offset(nx, nx), nx, part.bottom, tag=0))
        if part.has_top:
            reqs.append(comm.irecv(halo.offset(0, nx), nx, part.top, tag=0))
        if part.has_bottom:
            reqs.append(comm.irecv(halo.offset(nx, nx), nx, part.bottom, tag=0))
        waitall(reqs)
        state.swap()

    total, per_iter = measure_loop(rank_ctx, cfg, stream, step, comm.barrier)
    result = JacobiResult(
        rank=rank_ctx.rank,
        nranks=rank_ctx.world_size,
        total_time=total,
        time_per_iter=per_iter,
        interior=collect_interior(state) if collect else None,
    )
    mpi.finalize()
    return result
