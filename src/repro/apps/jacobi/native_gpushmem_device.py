"""Native GPUSHMEM Jacobi, device API variant (the paper's Listing 3).

Each iteration launches one cooperative kernel that computes the update,
issues block-granularity ``put_signal_nbi`` for both halo rows, and spins
on ``signal_wait_until`` — the CPU only launches and swaps.
"""

from __future__ import annotations

import numpy as np

from ...backends.gpushmem import ShmemContext
from ...gpu.kernel import device_kernel
from ...launcher import RankContext
from .domain import JacobiConfig, stencil_cost
from .harness import JacobiResult, collect_interior, coop_launch_dims, make_state, measure_loop
from .kernels import JacobiState, unpack_compute_pack


@device_kernel(name="jacobi_shmem_dev")
def _jacobi_dev(ctx, state: JacobiState) -> None:
    shmem = ctx.shmem
    part = state.part
    nx = part.nx
    ctx.compute(stencil_cost(part.chunk, nx))
    unpack_compute_pack(state)
    nxt = (state.it + 1) % 2
    val = state.it + 1
    halo = state.halo_in[nxt]
    out = state.bound_out
    sig = state.sig
    if part.has_top:
        shmem.put_signal_nbi(
            halo.offset_by(nx, nx), out.offset_by(0, nx), nx,
            sig.offset_by(2 * nxt + 1, 1), val, part.top, group="block",
        )
    if part.has_bottom:
        shmem.put_signal_nbi(
            halo.offset_by(0, nx), out.offset_by(nx, nx), nx,
            sig.offset_by(2 * nxt + 0, 1), val, part.bottom, group="block",
        )
    if part.has_top:
        shmem.signal_wait_until(sig.offset_by(2 * nxt + 0, 1), "ge", val)
    if part.has_bottom:
        shmem.signal_wait_until(sig.offset_by(2 * nxt + 1, 1), "ge", val)


def run(rank_ctx: RankContext, cfg: JacobiConfig, collect: bool = False) -> JacobiResult:
    """Run the native GPUSHMEM device-API Jacobi on this rank."""
    rank_ctx.set_device(rank_ctx.node_rank)
    shmem = ShmemContext(rank_ctx)
    device = rank_ctx.require_device()
    stream = device.create_stream()

    state = make_state(
        rank_ctx,
        cfg,
        alloc_comm=lambda n: shmem.malloc(n, np.float32),
        alloc_sig=lambda n: shmem.malloc(n, np.uint64),
    )
    grid, block = coop_launch_dims(state.part, device)

    def step() -> None:
        shmem.collective_launch(_jacobi_dev, grid, block, args=(state.freeze(),), stream=stream)
        state.swap()

    total, per_iter = measure_loop(rank_ctx, cfg, stream, step, shmem.barrier_all)
    stream.synchronize()
    return JacobiResult(
        rank=rank_ctx.rank,
        nranks=rank_ctx.world_size,
        total_time=total,
        time_per_iter=per_iter,
        interior=collect_interior(state) if collect else None,
    )
