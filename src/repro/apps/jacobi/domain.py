"""Jacobi 2D problem setup: partitioning, initialization, serial reference.

The grid is ny x nx with Dirichlet boundaries (top row 1.0, bottom row 2.0,
left/right columns 0.0, matching nothing in particular — any fixed boundary
exercises the same communication). It is partitioned in contiguous row
blocks along y (the paper's layout); each rank updates its interior rows
and exchanges one halo row with each neighbour per iteration.

The 5-point update is order-independent per element, so a distributed run
must agree *bitwise* with the serial reference — which is exactly what the
integration tests assert, making any ordering/synchronization bug in the
backends fatal rather than silent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

__all__ = ["JacobiConfig", "Partition", "partition_rows", "init_global", "init_local", "serial_jacobi", "stencil_cost"]

from ...hardware.gpu import KernelCost


@dataclass(frozen=True)
class JacobiConfig:
    """One Jacobi experiment (paper: nx = ny = 2^14, 100K iterations)."""

    nx: int = 256
    ny: int = 256
    iters: int = 100
    warmup: int = 10

    def __post_init__(self) -> None:
        if self.nx < 3 or self.ny < 3:
            raise ValueError("grid must be at least 3x3")
        if self.iters < 1 or self.warmup < 0:
            raise ValueError("invalid iteration counts")


@dataclass(frozen=True)
class Partition:
    """One rank's slab of interior rows [row_start, row_end)."""

    rank: int
    nranks: int
    nx: int
    ny: int
    row_start: int  # first interior row owned (global index)
    row_end: int  # one past the last owned row

    @property
    def chunk(self) -> int:
        """Number of interior rows this rank owns."""
        return self.row_end - self.row_start

    @property
    def has_top(self) -> bool:
        """True if a neighbouring rank owns the row above (not a boundary)."""
        return self.rank > 0

    @property
    def has_bottom(self) -> bool:
        """True if a neighbouring rank owns the row below."""
        return self.rank < self.nranks - 1

    @property
    def top(self) -> int:
        """Rank of the neighbour above."""
        return self.rank - 1

    @property
    def bottom(self) -> int:
        """Rank of the neighbour below."""
        return self.rank + 1


def partition_rows(cfg: JacobiConfig, rank: int, nranks: int) -> Partition:
    """Split the interior rows [1, ny-1) into contiguous near-equal slabs."""
    interior = cfg.ny - 2
    if nranks > interior:
        raise ValueError(f"{nranks} ranks for only {interior} interior rows")
    base, extra = divmod(interior, nranks)
    start = 1 + rank * base + min(rank, extra)
    end = start + base + (1 if rank < extra else 0)
    return Partition(rank, nranks, cfg.nx, cfg.ny, start, end)


def init_global(cfg: JacobiConfig) -> np.ndarray:
    """The full initial grid with Dirichlet boundaries."""
    grid = np.zeros((cfg.ny, cfg.nx), dtype=np.float32)
    grid[0, :] = 1.0
    grid[-1, :] = 2.0
    grid[:, 0] = 0.0
    grid[:, -1] = 0.0
    return grid


def init_local(cfg: JacobiConfig, part: Partition) -> np.ndarray:
    """One rank's (chunk+2) x nx slab, halo rows pre-filled from the
    initial condition (so iteration 0 needs no prior exchange)."""
    full = init_global(cfg)
    return full[part.row_start - 1 : part.row_end + 1].copy()


def serial_jacobi(cfg: JacobiConfig, iters: int = None) -> np.ndarray:
    """Reference solution on a single process."""
    n = cfg.iters if iters is None else iters
    a = init_global(cfg)
    anew = a.copy()
    for _ in range(n):
        anew[1:-1, 1:-1] = 0.25 * (
            a[:-2, 1:-1] + a[2:, 1:-1] + a[1:-1, :-2] + a[1:-1, 2:]
        )
        a, anew = anew, a
    return a


def stencil_cost(chunk: int, nx: int) -> KernelCost:
    """Roofline cost of one slab update: streaming read + write + 4 flops."""
    n = chunk * nx
    return KernelCost(bytes_moved=8.0 * n, flops=4.0 * n)
