"""Jacobi 2D solver: native per-library variants plus one Uniconn variant.

Variant registry keys match the paper's legend:
``mpi-native``, ``gpuccl-native``, ``gpushmem-host-native``,
``gpushmem-device-native``, and ``uniconn:<backend>[:<mode>]`` via
:func:`run_variant`.
"""

from __future__ import annotations

from typing import Optional

from ...launcher import RankContext, launch
from ...sim import Tracer
from . import (
    elastic,
    native_gpuccl,
    native_gpushmem_device,
    native_gpushmem_host,
    native_mpi,
    resilient,
    uniconn,
)
from .domain import JacobiConfig, init_global, partition_rows, serial_jacobi
from .harness import JacobiResult, assemble
from .kernels import JacobiState

__all__ = [
    "JacobiConfig",
    "JacobiResult",
    "JacobiState",
    "NATIVE_VARIANTS",
    "run_variant",
    "launch_variant",
    "serial_jacobi",
    "init_global",
    "partition_rows",
    "assemble",
]

NATIVE_VARIANTS = {
    "mpi-native": native_mpi.run,
    "gpuccl-native": native_gpuccl.run,
    "gpushmem-host-native": native_gpushmem_host.run,
    "gpushmem-device-native": native_gpushmem_device.run,
    "mpi-resilient": resilient.run,
}


def run_variant(rank_ctx: RankContext, variant: str, cfg: JacobiConfig, collect: bool = False) -> JacobiResult:
    """Dispatch one rank's Jacobi run by variant name.

    Uniconn variants are named ``uniconn:<backend>`` (host mode) or
    ``uniconn:gpushmem:<PureHost|PartialDevice|PureDevice>``; the elastic
    recovery variant is ``elastic:<backend>`` (docs/FAULTS.md).
    """
    if variant in NATIVE_VARIANTS:
        return NATIVE_VARIANTS[variant](rank_ctx, cfg, collect=collect)
    parts = variant.split(":")
    if parts[0] == "elastic" and len(parts) == 2:
        return elastic.run(rank_ctx, cfg, backend=parts[1], collect=collect)
    if parts[0] != "uniconn" or len(parts) not in (2, 3):
        raise ValueError(f"unknown jacobi variant {variant!r}")
    backend = parts[1]
    mode = parts[2] if len(parts) == 3 else "PureHost"
    return uniconn.run(rank_ctx, cfg, backend=backend, launch_mode=mode, collect=collect)


def launch_variant(variant: str, cfg: JacobiConfig, nranks: int, machine="perlmutter",
                   collect=False, stats_out: Optional[dict] = None,
                   tracer: Optional[Tracer] = None,
                   fault_plan=None, fault_seed: Optional[int] = None,
                   *, obs: Optional[str] = None, trace_out: Optional[str] = None,
                   sanitize=None, coll=None):
    """Launch a whole Jacobi job for one variant.

    Returns the :class:`~repro.launcher.RunReport` (a list of per-rank
    results carrying ``stats``/``metrics``/``faults``). ``stats_out`` is
    still filled when given, for callers predating the report object.
    """
    report = launch(run_variant, nranks, machine=machine, args=(variant, cfg, collect),
                    tracer=tracer, fault_plan=fault_plan, fault_seed=fault_seed,
                    obs=obs, trace_out=trace_out, sanitize=sanitize, coll=coll)
    if stats_out is not None:
        stats_out.update(report.stats)
    return report
