"""Jacobi 2D solver: native per-library variants plus one Uniconn variant.

Variant registry keys match the paper's legend:
``mpi-native``, ``gpuccl-native``, ``gpushmem-host-native``,
``gpushmem-device-native``, and ``uniconn:<backend>[:<mode>]`` via
:func:`run_variant`.
"""

from __future__ import annotations

from typing import Optional

from ..._compat import warn_once
from ...launcher import RankContext, launch
from ...sim import Tracer
from . import (
    elastic,
    native_gpuccl,
    native_gpushmem_device,
    native_gpushmem_host,
    native_mpi,
    resilient,
    uniconn,
)
from .domain import JacobiConfig, init_global, partition_rows, serial_jacobi
from .harness import JacobiResult, assemble
from .kernels import JacobiState

__all__ = [
    "JacobiConfig",
    "JacobiResult",
    "JacobiState",
    "NATIVE_VARIANTS",
    "run_variant",
    "launch_variant",
    "serial_jacobi",
    "init_global",
    "partition_rows",
    "assemble",
]

NATIVE_VARIANTS = {
    "mpi-native": native_mpi.run,
    "gpuccl-native": native_gpuccl.run,
    "gpushmem-host-native": native_gpushmem_host.run,
    "gpushmem-device-native": native_gpushmem_device.run,
    "mpi-resilient": resilient.run,
}


def run_variant(rank_ctx: RankContext, variant: str, cfg: JacobiConfig, collect: bool = False) -> JacobiResult:
    """Dispatch one rank's Jacobi run by variant name.

    Uniconn variants are named ``uniconn:<backend>`` (host mode) or
    ``uniconn:gpushmem:<PureHost|PartialDevice|PureDevice>``; the elastic
    recovery variant is ``elastic:<backend>`` (docs/FAULTS.md).
    """
    if variant in NATIVE_VARIANTS:
        return NATIVE_VARIANTS[variant](rank_ctx, cfg, collect=collect)
    parts = variant.split(":")
    if parts[0] == "elastic" and len(parts) == 2:
        return elastic.run(rank_ctx, cfg, backend=parts[1], collect=collect)
    if parts[0] != "uniconn" or len(parts) not in (2, 3):
        raise ValueError(f"unknown jacobi variant {variant!r}")
    backend = parts[1]
    mode = parts[2] if len(parts) == 3 else "PureHost"
    return uniconn.run(rank_ctx, cfg, backend=backend, launch_mode=mode, collect=collect)


def launch_variant(
    variant: str,
    cfg: JacobiConfig,
    nranks: int,
    *legacy,
    machine: str = "perlmutter",
    collect: bool = False,
    stats_out: Optional[dict] = None,
    tracer: Optional[Tracer] = None,
    fault_plan=None,
    fault_seed: Optional[int] = None,
    obs: Optional[str] = None,
    trace_out: Optional[str] = None,
    sanitize=None,
    coll=None,
    capture: Optional[str] = None,
):
    """Launch a whole Jacobi job for one variant.

    Returns the :class:`~repro.launcher.RunReport` (a list of per-rank
    results carrying ``stats``/``metrics``/``faults``). Everything after
    ``(variant, cfg, nranks)`` is keyword-only — the same keyword set as
    ``cg.launch_variant`` / ``jacobi2d.launch_2d`` (the old positional
    spelling works through a warn-once deprecation shim). ``stats_out`` is
    deprecated: read ``report.stats`` instead.
    """
    if legacy:
        warn_once(
            "jacobi.launch_variant.positional",
            "launch_variant(variant, cfg, nranks, machine, collect, ...) "
            "with positional options is deprecated; pass them by keyword",
        )
        names = ("machine", "collect", "stats_out", "tracer", "fault_plan", "fault_seed")
        if len(legacy) > len(names):
            raise TypeError("launch_variant() takes at most 9 positional arguments")
        for name, value in zip(names, legacy):
            if name == "machine":
                machine = value
            elif name == "collect":
                collect = value
            elif name == "stats_out":
                stats_out = value
            elif name == "tracer":
                tracer = value
            elif name == "fault_plan":
                fault_plan = value
            else:
                fault_seed = value
    report = launch(run_variant, nranks, machine=machine, args=(variant, cfg, collect),
                    tracer=tracer, fault_plan=fault_plan, fault_seed=fault_seed,
                    obs=obs, trace_out=trace_out, sanitize=sanitize, coll=coll,
                    capture=capture)
    if stats_out is not None:
        warn_once(
            "launch_variant.stats_out",
            "launch_variant(stats_out=...) is deprecated; use the returned "
            "RunReport's .stats attribute instead",
        )
        stats_out.update(report.stats)
    return report
