"""Fault-tolerant MPI Jacobi: in-memory checkpoints plus rollback-and-rerun.

The graceful-degradation harness of the robustness layer (docs/FAULTS.md).
The solver runs the same halo exchange as ``mpi-native`` but survives
transient message loss injected by :mod:`repro.sim.faults`:

- every ``checkpoint_every`` iterations each rank snapshots its solver
  buffers (``a``, ``anew``, both halo staging buffers, ``bound_out``) and
  the iteration counter into host memory;
- each iteration ends with a one-word allreduce of a failure flag, so all
  ranks agree on whether *anyone's* exchange gave up
  (:class:`~repro.errors.MpiTimeoutError` after the retransmission budget);
  the allreduce uses internal negative tags, so message faults aimed at the
  application's tag-0 traffic never break the control plane;
- on failure every rank rolls back to the last checkpoint and replays.
  The retransmission backoff advanced virtual time, so replays eventually
  start after a transient fault window ends and the run converges to the
  exact fault-free result — only later.

A fault that never clears makes the run exceed ``max_restarts`` rollbacks
and raises :class:`~repro.errors.FaultInjectionError` instead of looping
forever.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ...backends.mpi import MpiContext, waitall
from ...errors import FaultInjectionError, MpiTimeoutError
from ...gpu import GpuEvent, elapsed
from ...launcher import RankContext
from .domain import JacobiConfig
from .harness import JacobiResult, collect_interior, launch_dims, make_state
from .kernels import jacobi_kernel

__all__ = ["run"]


def run(
    rank_ctx: RankContext,
    cfg: JacobiConfig,
    collect: bool = False,
    checkpoint_every: int = 8,
    max_restarts: int = 64,
) -> JacobiResult:
    """Run the checkpointing GPU-aware-MPI Jacobi on this rank."""
    rank_ctx.set_device(rank_ctx.node_rank)
    mpi = MpiContext(rank_ctx)
    comm = mpi.comm_world
    device = rank_ctx.require_device()
    engine = rank_ctx.engine
    stream = device.create_stream()

    state = make_state(rank_ctx, cfg, alloc_comm=lambda n: device.malloc(n, np.float32))
    part = state.part
    nx = cfg.nx
    grid, block = launch_dims(part)

    snapshot: Dict[str, np.ndarray] = {}
    snapshot_it = [-1]
    restarts = [0]
    flag = np.zeros(1, np.float32)
    agreed = np.zeros(1, np.float32)

    def take_checkpoint() -> None:
        snapshot["a"] = state.a.data.copy()
        snapshot["anew"] = state.anew.data.copy()
        snapshot["halo0"] = state.halo_in[0].data.copy()
        snapshot["halo1"] = state.halo_in[1].data.copy()
        snapshot["bound"] = state.bound_out.data.copy()
        snapshot_it[0] = state.it

    def rollback() -> None:
        restarts[0] += 1
        if restarts[0] > max_restarts:
            raise FaultInjectionError(
                f"rank {rank_ctx.rank}: jacobi exceeded {max_restarts} rollbacks "
                f"at t={engine.now:.9g}s — injected fault is not transient"
            )
        injector = engine.fault_injector
        if injector is not None:
            injector.record(
                "fault.jacobi_rollback",
                rank=rank_ctx.rank,
                at_iter=state.it,
                to_iter=snapshot_it[0],
            )
        state.a.write(snapshot["a"])
        state.anew.write(snapshot["anew"])
        state.halo_in[0].write(snapshot["halo0"])
        state.halo_in[1].write(snapshot["halo1"])
        state.bound_out.write(snapshot["bound"])
        state.it = snapshot_it[0]

    def exchange() -> None:
        nxt = (state.it + 1) % 2
        halo = state.halo_in[nxt]
        out = state.bound_out
        reqs = []
        if part.has_top:
            reqs.append(comm.isend(out.offset(0, nx), nx, part.top, tag=0))
        if part.has_bottom:
            reqs.append(comm.isend(out.offset(nx, nx), nx, part.bottom, tag=0))
        if part.has_top:
            reqs.append(comm.irecv(halo.offset(0, nx), nx, part.top, tag=0))
        if part.has_bottom:
            reqs.append(comm.irecv(halo.offset(nx, nx), nx, part.bottom, tag=0))
        waitall(reqs)

    def step() -> None:
        """One recoverable iteration; advances ``state.it`` only on success."""
        if state.it % checkpoint_every == 0 and state.it != snapshot_it[0]:
            take_checkpoint()
        device.launch(jacobi_kernel, grid, block, args=(state.freeze(),), stream=stream)
        stream.synchronize()
        failed = 0.0
        try:
            exchange()
        except MpiTimeoutError:
            failed = 1.0
        # Lockstep recovery vote: all ranks learn whether any exchange gave
        # up this iteration, so rollback is global and nobody runs ahead.
        flag[0] = failed
        comm.allreduce(flag, agreed, 1, "sum")
        if agreed[0] > 0.0:
            rollback()
        else:
            state.swap()

    while state.it < cfg.warmup:
        step()
    comm.barrier()
    stream.synchronize()
    start, end = GpuEvent(device, "start"), GpuEvent(device, "end")
    start.record(stream)
    while state.it < cfg.warmup + cfg.iters:
        step()
    end.record(stream)
    end.synchronize()
    total = elapsed(start, end)

    result = JacobiResult(
        rank=rank_ctx.rank,
        nranks=rank_ctx.world_size,
        total_time=total,
        time_per_iter=total / cfg.iters,
        interior=collect_interior(state) if collect else None,
        restarts=restarts[0],
    )
    mpi.finalize()
    return result
