"""Uniconn Jacobi: ONE implementation for every backend and launch mode.

This is the paper's Listing 4, line for line: Environment -> SetDevice ->
Communicator -> Memory -> Coordinator with three BindKernel calls (one per
LaunchMode) -> time loop of LaunchKernel / CommStart / Post x2 /
Acknowledge x2 / CommEnd / swap. Switching backend or launch mode changes
only the two constructor arguments.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ...core import Communicator, Coordinator, Environment, LaunchMode, Memory, ThreadGroup
from ...gpu.kernel import device_kernel
from ...launcher import RankContext
from .domain import JacobiConfig, stencil_cost
from .harness import (
    JacobiResult,
    collect_interior,
    coop_launch_dims,
    launch_dims,
    make_state,
    measure_loop,
)
from .kernels import JacobiState, jacobi_kernel, unpack_compute_pack


@device_kernel(name="jacobi_p_dev")
def _jacobi_p_dev(ctx, state: JacobiState, comm_d) -> None:
    """PartialDevice kernel (Listing 6): compute, then device-initiated
    payload puts with no signal; the host's Post/Acknowledge complete the
    iteration's synchronization."""
    u = ctx.uniconn
    part = state.part
    nx = part.nx
    ctx.compute(stencil_cost(part.chunk, nx))
    unpack_compute_pack(state)
    nxt = (state.it + 1) % 2
    halo, out = state.halo_in[nxt], state.bound_out
    if part.has_top:
        u.post(out.offset_by(0, nx), halo.offset_by(nx, nx), nx,
               None, 0, part.top, comm_d, group=ThreadGroup.BLOCK)
    if part.has_bottom:
        u.post(out.offset_by(nx, nx), halo.offset_by(0, nx), nx,
               None, 0, part.bottom, comm_d, group=ThreadGroup.BLOCK)


@device_kernel(name="jacobi_f_dev")
def _jacobi_f_dev(ctx, state: JacobiState, comm_d) -> None:
    """PureDevice kernel (Listing 5): compute and complete the whole halo
    exchange inside the kernel via the Uniconn device API."""
    u = ctx.uniconn
    part = state.part
    nx = part.nx
    ctx.compute(stencil_cost(part.chunk, nx))
    unpack_compute_pack(state)
    nxt = (state.it + 1) % 2
    val = state.it + 1
    halo, out, sig = state.halo_in[nxt], state.bound_out, state.sig
    if part.has_top:
        u.post(out.offset_by(0, nx), halo.offset_by(nx, nx), nx,
               sig.offset_by(2 * nxt + 1, 1), val, part.top, comm_d)
    if part.has_bottom:
        u.post(out.offset_by(nx, nx), halo.offset_by(0, nx), nx,
               sig.offset_by(2 * nxt + 0, 1), val, part.bottom, comm_d)
    if part.has_top:
        u.acknowledge(halo.offset_by(0, nx), nx, sig.offset_by(2 * nxt + 0, 1), val, part.top, comm_d)
    if part.has_bottom:
        u.acknowledge(halo.offset_by(nx, nx), nx, sig.offset_by(2 * nxt + 1, 1), val, part.bottom, comm_d)


def run(
    rank_ctx: RankContext,
    cfg: JacobiConfig,
    backend: Union[str, type, None] = None,
    launch_mode: Union[str, LaunchMode, None] = None,
    collect: bool = False,
) -> JacobiResult:
    # --- Setup phase (Listing 4, lines 1-29) -------------------------- #
    """Run the Uniconn Jacobi on this rank for any backend/launch mode."""
    env = Environment(rank_ctx, backend=backend)
    env.set_device(env.node_rank())
    comm = Communicator(env)
    device = env.device
    stream = device.create_stream()
    coord = Coordinator(env, stream=stream, launch_mode=launch_mode)
    mode = coord.launch_mode

    needs_sig = coord.uses_signals
    state = make_state(
        rank_ctx,
        cfg,
        alloc_comm=lambda n: Memory.alloc(env, n, dtype=np.float32),
        alloc_sig=(lambda n: Memory.alloc(env, n, dtype=np.uint64)) if needs_sig else None,
    )
    part = state.part
    nx = cfg.nx

    comm_d = comm.to_device() if mode.uses_device_api else None
    h_grid, h_block = launch_dims(part)
    coord.bind_kernel(LaunchMode.PureHost, jacobi_kernel, h_grid, h_block,
                      args=lambda: (state.freeze(),))
    if mode.uses_device_api:
        d_grid, d_block = coop_launch_dims(part, device)
        coord.bind_kernel(LaunchMode.PartialDevice, _jacobi_p_dev, d_grid, d_block,
                          args=lambda: (state.freeze(), comm_d))
        coord.bind_kernel(LaunchMode.PureDevice, _jacobi_f_dev, d_grid, d_block,
                          args=lambda: (state.freeze(), comm_d))
    comm.barrier(stream=stream)

    # --- Progression: the time loop (Listing 4, lines 30-41) ---------- #
    def step() -> None:
        coord.launch_kernel()
        nxt = (state.it + 1) % 2
        val = state.it + 1
        halo, out = state.halo_in[nxt], state.bound_out
        sig = state.sig
        # Signal slots: [2*parity + 0] = halo from top, [+1] = from bottom.
        sig_from_top = sig.offset_by(2 * nxt + 0, 1) if sig is not None else None
        sig_from_bot = sig.offset_by(2 * nxt + 1, 1) if sig is not None else None
        coord.comm_start()
        if part.has_top:
            # My top row -> top neighbour's "from bottom" slot.
            coord.post(out.offset_by(0, nx), halo.offset_by(nx, nx), nx,
                       sig_from_bot, val, part.top, comm)
        if part.has_bottom:
            coord.post(out.offset_by(nx, nx), halo.offset_by(0, nx), nx,
                       sig_from_top, val, part.bottom, comm)
        if part.has_top:
            coord.acknowledge(halo.offset_by(0, nx), nx, sig_from_top, val, part.top, comm)
        if part.has_bottom:
            coord.acknowledge(halo.offset_by(nx, nx), nx, sig_from_bot, val, part.bottom, comm)
        coord.comm_end()
        state.swap()

    total, per_iter = measure_loop(rank_ctx, cfg, stream, step, lambda: comm.barrier(stream=stream))
    stream.synchronize()

    # --- Termination (Listing 4, lines 42-49; Environment is RAII) ---- #
    result = JacobiResult(
        rank=rank_ctx.rank,
        nranks=rank_ctx.world_size,
        total_time=total,
        time_per_iter=per_iter,
        interior=collect_interior(state) if collect else None,
    )
    env.close()
    return result
