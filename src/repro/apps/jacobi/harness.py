"""Shared scaffolding for all Jacobi variants: buffers, timing, collection.

Timing follows the paper's methodology (Section VI-A2): GPU-event timing on
the application's main stream, warm-up iterations first, then a barrier,
then the measured loop between two recorded events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from ...gpu import GpuEvent, dim3, elapsed
from ...launcher import RankContext
from ...sim.capture import loop_region
from .domain import JacobiConfig, Partition, init_local, partition_rows
from .kernels import JacobiState

__all__ = ["JacobiResult", "make_state", "launch_dims", "measure_loop", "collect_interior"]


@dataclass
class JacobiResult:
    """Per-rank outcome of one Jacobi run."""

    rank: int
    nranks: int
    total_time: float  # virtual seconds for the measured iterations
    time_per_iter: float
    interior: Optional[np.ndarray] = None  # owned rows (for verification)
    restarts: int = 0  # checkpoint rollbacks taken (mpi-resilient only)


def make_state(rank_ctx: RankContext, cfg: JacobiConfig, alloc_comm: Callable, alloc_sig=None) -> JacobiState:
    """Allocate and initialize one rank's solver state.

    ``alloc_comm(count)`` allocates a communication staging buffer (plain
    device memory for two-sided backends, symmetric for GPUSHMEM);
    ``alloc_sig(count)`` allocates the uint64 signal words when needed.
    """
    part = partition_rows(cfg, rank_ctx.rank, rank_ctx.world_size)
    device = rank_ctx.require_device()
    local = init_local(cfg, part)
    a = device.malloc(local.size, np.float32)
    anew = device.malloc(local.size, np.float32)
    a.write(local.reshape(-1))
    anew.write(local.reshape(-1))
    nx = cfg.nx
    halo_in = (alloc_comm(2 * nx), alloc_comm(2 * nx))
    bound_out = alloc_comm(2 * nx)
    sig = alloc_sig(4) if alloc_sig is not None else None
    return JacobiState(part, a, anew, halo_in, bound_out, sig)


def launch_dims(part: Partition) -> Tuple[tuple, tuple]:
    """Grid/block dims covering the slab with 16x16 thread blocks."""
    bx, by = 16, 16
    gx = (part.nx + bx - 1) // bx
    gy = (part.chunk + by - 1) // by
    return dim3(gx, gy), dim3(bx, by)


def coop_launch_dims(part: Partition, device) -> Tuple[tuple, tuple]:
    """Launch dims for cooperative (device-API) kernels.

    Cooperative launches cannot exceed the resident-block limit (no
    preemption — the constraint the paper's Section II-B points out), so
    device kernels use grid-stride loops over a capped grid.
    """
    grid, block = launch_dims(part)
    gx, gy, _ = grid
    limit = device.model.max_coop_blocks
    while gx * gy > limit and gy > 1:
        gy = (gy + 1) // 2
    while gx * gy > limit and gx > 1:
        gx = (gx + 1) // 2
    return dim3(gx, gy), block


def measure_loop(
    rank_ctx: RankContext,
    cfg: JacobiConfig,
    stream,
    step: Callable[[], None],
    barrier: Callable[[], None],
) -> Tuple[float, float]:
    """Warm up, synchronize, then time ``cfg.iters`` steps with GPU events."""
    device = rank_ctx.require_device()
    for _ in range(cfg.warmup):
        step()
    barrier()
    stream.synchronize()
    # The steady-state loop: annotated for graph capture & replay. The
    # pointer swap in step() gives the timeline a period of 2 iterations.
    region = loop_region(
        rank_ctx.engine, "jacobi.measure", replay_safe=True, parity=2, min_period=2
    )
    start, end = GpuEvent(device, "start"), GpuEvent(device, "end")
    start.record(stream)
    i = 0
    while i < cfg.iters:
        # The stream lets a fully-async loop (whose host-side marks all
        # collapse into one timer window) fall back to device-order
        # boundary markers instead of disabling capture.
        i += region.boundary(rank_ctx.rank, i, cfg.iters, stream=stream)
        if i >= cfg.iters:
            break
        step()
        i += 1
    end.record(stream)
    end.synchronize()
    total = elapsed(start, end)
    return total, total / cfg.iters


def collect_interior(state: JacobiState) -> np.ndarray:
    """This rank's owned rows of the final grid (the swap means the latest
    values live in ``a`` after the last swap)."""
    part = state.part
    grid = state.a.data.reshape(part.chunk + 2, part.nx)
    return grid[1 : part.chunk + 1].copy()


def assemble(cfg: JacobiConfig, results) -> np.ndarray:
    """Glue per-rank interiors (plus boundaries) back into a full grid."""
    from .domain import init_global

    full = init_global(cfg)
    for res in results:
        part = partition_rows(cfg, res.rank, res.nranks)
        full[part.row_start : part.row_end] = res.interior
    return full
