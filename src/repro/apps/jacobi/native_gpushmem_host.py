"""Native GPUSHMEM Jacobi, host/stream API variant.

Per iteration: compute kernel, then one-sided put-with-signal of each
boundary row into the neighbour's staging buffer and a stream-ordered
signal wait for this iteration's incoming halos — no host blocking inside
the loop.
"""

from __future__ import annotations

import numpy as np

from ...backends.gpushmem import ShmemContext
from ...launcher import RankContext
from .domain import JacobiConfig
from .harness import JacobiResult, collect_interior, launch_dims, make_state, measure_loop
from .kernels import jacobi_kernel


def run(rank_ctx: RankContext, cfg: JacobiConfig, collect: bool = False) -> JacobiResult:
    """Run the native GPUSHMEM host-API Jacobi on this rank."""
    rank_ctx.set_device(rank_ctx.node_rank)
    shmem = ShmemContext(rank_ctx)
    device = rank_ctx.require_device()
    stream = device.create_stream()

    state = make_state(
        rank_ctx,
        cfg,
        alloc_comm=lambda n: shmem.malloc(n, np.float32),
        alloc_sig=lambda n: shmem.malloc(n, np.uint64),
    )
    part = state.part
    nx = cfg.nx
    grid, block = launch_dims(part)

    def step() -> None:
        device.launch(jacobi_kernel, grid, block, args=(state.freeze(),), stream=stream)
        nxt = (state.it + 1) % 2
        val = state.it + 1
        halo = state.halo_in[nxt]
        out = state.bound_out
        sig = state.sig
        if part.has_top:
            # My top row lands in the top neighbour's "from bottom" slot.
            shmem.put_signal_on_stream(
                halo.offset_by(nx, nx), out.offset_by(0, nx), nx,
                sig.offset_by(2 * nxt + 1, 1), val, part.top, stream,
            )
        if part.has_bottom:
            shmem.put_signal_on_stream(
                halo.offset_by(0, nx), out.offset_by(nx, nx), nx,
                sig.offset_by(2 * nxt + 0, 1), val, part.bottom, stream,
            )
        if part.has_top:
            shmem.signal_wait_until_on_stream(sig.offset_by(2 * nxt + 0, 1), "ge", val, stream)
        if part.has_bottom:
            shmem.signal_wait_until_on_stream(sig.offset_by(2 * nxt + 1, 1), "ge", val, stream)
        state.swap()

    total, per_iter = measure_loop(rank_ctx, cfg, stream, step, shmem.barrier_all)
    stream.synchronize()
    return JacobiResult(
        rank=rank_ctx.rank,
        nranks=rank_ctx.world_size,
        total_time=total,
        time_per_iter=per_iter,
        interior=collect_interior(state) if collect else None,
    )
