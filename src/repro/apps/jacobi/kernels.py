"""Jacobi GPU kernels shared by every variant (native and Uniconn).

Buffer scheme (the paper's Listing 4 layout):

- ``a``/``anew``: (chunk+2) x nx slabs in plain device memory, swapped each
  iteration;
- ``halo_in[0..1]``: two 2*nx staging buffers (double-buffered by iteration
  parity) that neighbours' halo rows arrive in — allocated through
  Uniconn's ``Memory`` (symmetric for GPUSHMEM): [0:nx] holds the row from
  the top neighbour, [nx:2nx] the row from the bottom neighbour;
- ``bound_out``: 2*nx staging that the kernel packs outgoing boundary rows
  into: [0:nx] goes to the top neighbour, [nx:2nx] to the bottom;
- ``sig``: 4 signal words, slot ``2*parity + {0: from top, 1: from bottom}``.

One iteration ``it`` (paper Listing 4's time loop):

1. kernel: unpack ``halo_in[it % 2]``, 5-point update, pack ``bound_out``;
2. post boundary rows into the *next* parity slot on each neighbour with
   signal value ``it + 1``; acknowledge this iteration's incoming halos;
3. swap ``a``/``anew``.

The kernel reads its buffers through a mutable :class:`JacobiState`, which
is how the bind-once/launch-every-iteration pattern of ``BindKernel`` works
while pointers are swapped between iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ...gpu.kernel import DeviceCtx, KernelSpec, device_kernel, kernel
from .domain import Partition, stencil_cost

__all__ = ["JacobiState", "jacobi_kernel", "unpack_compute_pack", "jacobi_pure_device_body"]


@dataclass
class JacobiState:
    """Mutable per-rank solver state read by the kernels at launch time."""

    part: Partition
    a: object  # DeviceBuffer
    anew: object  # DeviceBuffer
    halo_in: Tuple[object, object]  # staging pair (Memory buffers)
    bound_out: object  # staging (Memory buffer)
    sig: Optional[object] = None  # 4 signal words (GPUSHMEM only)
    it: int = 0
    # Kernel-side cache of reshaped/sliced numpy views, keyed by which
    # buffer is currently ``a`` (two arrangements alternate under swap).
    # Shared by reference across freeze() snapshots.
    views: dict = field(default_factory=dict)

    def swap(self) -> None:
        """End-of-iteration pointer swap (std::swap(a, a_new))."""
        self.a, self.anew = self.anew, self.a
        self.it += 1

    @property
    def parity(self) -> int:
        """Double-buffer parity of the current iteration."""
        return self.it % 2

    def freeze(self) -> "JacobiState":
        """Snapshot for launch-time argument capture.

        CUDA copies kernel argument *values* at launch; since the host swaps
        ``a``/``anew`` while kernels may still be queued, every launch must
        capture the current pointers, exactly like ``cudaLaunchKernel`` does.
        """
        return JacobiState(self.part, self.a, self.anew, self.halo_in,
                           self.bound_out, self.sig, self.it, self.views)


def unpack_compute_pack(state: JacobiState) -> None:
    """The raw math of one kernel execution (shared host/device).

    The hot lane caches reshapes/slices per (a, anew) arrangement and adds
    in place through one scratch row block — same left-associated order and
    multiply-last as the slow lane, so results stay bitwise identical to
    :func:`~.domain.serial_jacobi`. The sanitizer lane goes through
    ``.data`` so every buffer access is recorded.
    """
    part = state.part
    if (state.a.device.engine.sanitizer is not None
            or state.a._root.freed or state.anew._root.freed):
        return _unpack_compute_pack_checked(state)
    nx, chunk = part.nx, part.chunk
    v = state.views.get(state.a)
    if v is None:
        a = state.a.raw.reshape(chunk + 2, nx)
        anew = state.anew.raw.reshape(chunk + 2, nx)
        v = (
            a, anew,
            a[0:chunk, 1:-1], a[2 : chunk + 2, 1:-1],
            a[1 : chunk + 1, 0:-2], a[1 : chunk + 1, 2:],
            anew[1 : chunk + 1, 1 : nx - 1],
            np.empty((chunk, nx - 2), dtype=state.a.raw.dtype),
            (state.halo_in[0].raw, state.halo_in[1].raw),
            state.bound_out.raw,
            part.has_top, part.has_bottom,
        )
        state.views[state.a] = v
    a, anew, top, bottom, left, right, target, s, halos, out, has_top, has_bottom = v
    halo = halos[state.it % 2]
    if has_top:
        a[0, :] = halo[0:nx]
    if has_bottom:
        a[chunk + 1, :] = halo[nx : 2 * nx]
    np.add(top, bottom, out=s)
    s += left
    s += right
    s *= 0.25
    target[:] = s
    out[0:nx] = anew[1, :]
    out[nx : 2 * nx] = anew[chunk, :]


def _unpack_compute_pack_checked(state: JacobiState) -> None:
    """Sanitizer-visible lane: identical math through recorded accesses."""
    part = state.part
    nx, chunk = part.nx, part.chunk
    a = state.a.data.reshape(chunk + 2, nx)
    anew = state.anew.data.reshape(chunk + 2, nx)
    halo = state.halo_in[state.parity].data
    if part.has_top:
        a[0, :] = halo[0:nx]
    if part.has_bottom:
        a[chunk + 1, :] = halo[nx : 2 * nx]
    anew[1 : chunk + 1, 1 : nx - 1] = 0.25 * (
        a[0:chunk, 1:-1] + a[2 : chunk + 2, 1:-1]
        + a[1 : chunk + 1, 0:-2] + a[1 : chunk + 1, 2:]
    )
    out = state.bound_out.data
    out[0:nx] = anew[1, :]
    out[nx : 2 * nx] = anew[chunk, :]


def _cost(ctx: DeviceCtx, state: JacobiState):
    return stencil_cost(state.part.chunk, state.part.nx)


@kernel(name="jacobi_kernel", cost=_cost)
def jacobi_kernel(ctx: DeviceCtx, state: JacobiState) -> None:
    """Compute-only kernel (PureHost mode and all native host variants)."""
    unpack_compute_pack(state)


def jacobi_pure_device_body(comm_post, comm_wait, state: JacobiState) -> None:
    """The communication half of one PureDevice iteration.

    ``comm_post(src_view, dest_slot, sig_slot, value, neighbor)`` issues the
    device put; ``comm_wait(sig_slot, value)`` blocks on the signal. The
    exact wiring differs between the native NVSHMEM variant and the Uniconn
    device API, so it is injected.
    """
    part = state.part
    nx = part.nx
    next_parity = (state.it + 1) % 2
    value = state.it + 1
    out = state.bound_out
    if part.has_top:
        # My first interior row -> top neighbour's "from bottom" slot.
        comm_post(out.offset_by(0, nx), (next_parity, nx), 2 * next_parity + 1, value, part.top)
    if part.has_bottom:
        comm_post(out.offset_by(nx, nx), (next_parity, 0), 2 * next_parity + 0, value, part.bottom)
    if part.has_top:
        comm_wait(2 * next_parity + 0, value)
    if part.has_bottom:
        comm_wait(2 * next_parity + 1, value)


@device_kernel(name="jacobi_f_dev")
def jacobi_f_dev(ctx: DeviceCtx, state: JacobiState, post_fn, wait_fn) -> None:
    """PureDevice kernel skeleton: compute, then exchange inside the kernel.

    ``post_fn(ctx, ...)``/``wait_fn(ctx, ...)`` are bound by the variant
    (native GPUSHMEM device vs Uniconn device API).
    """
    ctx.compute(stencil_cost(state.part.chunk, state.part.nx))
    unpack_compute_pack(state)
    jacobi_pure_device_body(
        lambda src, dest_slot, sig_slot, value, peer: post_fn(ctx, src, dest_slot, sig_slot, value, peer),
        lambda sig_slot, value: wait_fn(ctx, sig_slot, value),
        state,
    )
