"""Native GPUCCL (NCCL/RCCL) Jacobi (the paper's Listing 2).

Per iteration: launch the compute kernel, then a grouped send/recv halo
exchange on the same stream — the host never blocks inside the loop; the
stream ordering carries the dependency into the next kernel.
"""

from __future__ import annotations

import numpy as np

from ...backends import gpuccl
from ...backends.gpuccl import GpucclComm, get_unique_id
from ...backends.mpi import MpiContext
from ...launcher import RankContext
from .domain import JacobiConfig
from .harness import JacobiResult, collect_interior, launch_dims, make_state, measure_loop
from .kernels import jacobi_kernel


def run(rank_ctx: RankContext, cfg: JacobiConfig, collect: bool = False) -> JacobiResult:
    """Run the native GPUCCL Jacobi on this rank."""
    rank_ctx.set_device(rank_ctx.node_rank)
    # GPUCCL bootstraps its unique id over MPI, as real applications do.
    mpi = MpiContext(rank_ctx)
    uid_token = np.zeros(1, np.int64)
    if rank_ctx.rank == 0:
        uid_token[0] = get_unique_id().value
    mpi.comm_world.bcast(uid_token, 1, root=0)
    uid = gpuccl.GpucclUniqueId.__new__(gpuccl.GpucclUniqueId)
    uid.value = int(uid_token[0])
    comm = GpucclComm(rank_ctx, uid, rank_ctx.world_size, rank_ctx.rank)

    device = rank_ctx.require_device()
    stream = device.create_stream()
    state = make_state(rank_ctx, cfg, alloc_comm=lambda n: device.malloc(n, np.float32))
    part = state.part
    nx = cfg.nx
    grid, block = launch_dims(part)

    def step() -> None:
        device.launch(jacobi_kernel, grid, block, args=(state.freeze(),), stream=stream)
        nxt = (state.it + 1) % 2
        halo = state.halo_in[nxt]
        out = state.bound_out
        gpuccl.group_start()
        if part.has_top:
            comm.send(out.offset(0, nx), nx, part.top, stream)
            comm.recv(halo.offset(0, nx), nx, part.top, stream)
        if part.has_bottom:
            comm.send(out.offset(nx, nx), nx, part.bottom, stream)
            comm.recv(halo.offset(nx, nx), nx, part.bottom, stream)
        gpuccl.group_end()
        state.swap()

    def barrier() -> None:
        token = np.zeros(1, np.float32)
        comm.all_reduce(token, token, 1, "sum", stream)
        stream.synchronize()

    total, per_iter = measure_loop(rank_ctx, cfg, stream, step, barrier)
    stream.synchronize()
    result = JacobiResult(
        rank=rank_ctx.rank,
        nranks=rank_ctx.world_size,
        total_time=total,
        time_per_iter=per_iter,
        interior=collect_interior(state) if collect else None,
    )
    mpi.finalize()
    return result
