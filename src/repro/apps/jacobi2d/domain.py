"""2D checkerboard partitioning for the Jacobi extension app."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["Grid2D", "Tile", "make_grid"]


@dataclass(frozen=True)
class Grid2D:
    """A py x px process grid over an ny x nx domain."""

    nx: int
    ny: int
    px: int
    py: int

    @property
    def size(self) -> int:
        """Total ranks in the process grid."""
        return self.px * self.py

    def coords(self, rank: int) -> Tuple[int, int]:
        """(tile row, tile column) of a rank (row-major layout)."""
        return rank // self.px, rank % self.px

    def rank_at(self, ty: int, tx: int) -> Optional[int]:
        """Rank at tile coordinates, or None outside the grid."""
        if 0 <= ty < self.py and 0 <= tx < self.px:
            return ty * self.px + tx
        return None


def make_grid(nx: int, ny: int, nranks: int) -> Grid2D:
    """Choose the most square px x py factorization of ``nranks``."""
    best = None
    for py in range(1, nranks + 1):
        if nranks % py:
            continue
        px = nranks // py
        if px > nx - 2 or py > ny - 2:
            continue
        score = abs(math.log(px / py))
        if best is None or score < best[0]:
            best = (score, px, py)
    if best is None:
        raise ValueError(f"cannot factor {nranks} ranks over a {ny}x{nx} grid")
    return Grid2D(nx=nx, ny=ny, px=best[1], py=best[2])


def _split(n_interior: int, parts: int, index: int) -> Tuple[int, int]:
    base, extra = divmod(n_interior, parts)
    start = 1 + index * base + min(index, extra)
    return start, start + base + (1 if index < extra else 0)


@dataclass(frozen=True)
class Tile:
    """One rank's tile: interior rows [y0, y1) x columns [x0, x1)."""

    grid: Grid2D
    rank: int
    y0: int
    y1: int
    x0: int
    x1: int

    @classmethod
    def of(cls, grid: Grid2D, rank: int) -> "Tile":
        """Build the tile owned by one rank."""
        ty, tx = grid.coords(rank)
        y0, y1 = _split(grid.ny - 2, grid.py, ty)
        x0, x1 = _split(grid.nx - 2, grid.px, tx)
        return cls(grid, rank, y0, y1, x0, x1)

    @property
    def height(self) -> int:
        """Interior rows of the tile."""
        return self.y1 - self.y0

    @property
    def width(self) -> int:
        """Interior columns of the tile."""
        return self.x1 - self.x0

    # Neighbour ranks (None at physical boundaries).
    @property
    def up(self) -> Optional[int]:
        """Rank of the tile above, or None at the boundary."""
        ty, tx = self.grid.coords(self.rank)
        return self.grid.rank_at(ty - 1, tx)

    @property
    def down(self) -> Optional[int]:
        """Rank of the tile below, or None at the boundary."""
        ty, tx = self.grid.coords(self.rank)
        return self.grid.rank_at(ty + 1, tx)

    @property
    def left(self) -> Optional[int]:
        """Rank of the tile to the left, or None at the boundary."""
        ty, tx = self.grid.coords(self.rank)
        return self.grid.rank_at(ty, tx - 1)

    @property
    def right(self) -> Optional[int]:
        """Rank of the tile to the right, or None at the boundary."""
        ty, tx = self.grid.coords(self.rank)
        return self.grid.rank_at(ty, tx + 1)

    def local_shape(self) -> Tuple[int, int]:
        """(height+2, width+2): the tile plus one halo ring."""
        return self.height + 2, self.width + 2

    def init_local(self, full: np.ndarray) -> np.ndarray:
        """The tile plus halo ring cut from the initial global grid."""
        return full[self.y0 - 1 : self.y1 + 1, self.x0 - 1 : self.x1 + 1].copy()
