"""Jacobi with a 2D (checkerboard) domain decomposition — an extension
beyond the paper's 1D row partitioning.

Each rank owns an interior tile and exchanges halos with up to four
neighbours per iteration (contiguous rows up/down, strided columns packed
into staging buffers left/right). The solver is written once against the
Uniconn API and runs over every backend and launch mode; like the 1D app,
results must agree bitwise with the serial reference.
"""

from .domain import Grid2D, Tile, make_grid
from .solver import (
    Jacobi2DConfig,
    Jacobi2DResult,
    assemble_2d,
    launch_2d,
    reference_2d,
    run_2d,
)

__all__ = [
    "Grid2D",
    "Tile",
    "make_grid",
    "Jacobi2DConfig",
    "Jacobi2DResult",
    "assemble_2d",
    "launch_2d",
    "reference_2d",
    "run_2d",
]
