"""The 2D-decomposed Jacobi solver over the Uniconn API.

Staging layout per rank (w = tile width, h = tile height):

- ``bound_out`` (2w + 2h): [0:w] row for the up neighbour, [w:2w] row for
  down, [2w:2w+h] column for left, [2w+h:2w+2h] column for right;
- ``halo_in[parity]`` (2w + 2h): [0:w] from up, [w:2w] from down,
  [2w:2w+h] from left, [2w+h:] from right;
- ``sig`` (8): slot ``4*parity + d`` with d in {0: from up, 1: from down,
  2: from left, 3: from right}.

Posting rules mirror the 1D app: my up-facing row lands in the up
neighbour's *from down* slot, and so on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..._compat import warn_once
from ...core import Communicator, Coordinator, Environment, LaunchMode, Memory
from ...gpu import GpuEvent, device_kernel, dim3, elapsed, kernel
from ...hardware.gpu import KernelCost
from ...launcher import RankContext, launch
from ..jacobi.domain import init_global, serial_jacobi
from ..jacobi.domain import JacobiConfig as _Cfg1D
from .domain import Grid2D, Tile, make_grid

__all__ = ["Jacobi2DConfig", "Jacobi2DResult", "run_2d", "launch_2d", "reference_2d", "assemble_2d"]


@dataclass(frozen=True)
class Jacobi2DConfig:
    nx: int = 64
    ny: int = 64
    iters: int = 20
    warmup: int = 2


@dataclass
class Jacobi2DResult:
    rank: int
    nranks: int
    total_time: float
    time_per_iter: float
    tile: Optional[np.ndarray] = None


@dataclass
class _State:
    tile: Tile
    a: object
    anew: object
    halo_in: tuple
    bound_out: object
    sig: Optional[object]
    it: int = 0

    def freeze(self) -> "_State":
        return _State(self.tile, self.a, self.anew, self.halo_in,
                      self.bound_out, self.sig, self.it)

    def swap(self) -> None:
        self.a, self.anew = self.anew, self.a
        self.it += 1


def _step_math(state: _State) -> None:
    """Unpack halos, 5-point update, pack outgoing boundary strips."""
    t = state.tile
    h, w = t.height, t.width
    a = state.a.data.reshape(h + 2, w + 2)
    anew = state.anew.data.reshape(h + 2, w + 2)
    halo = state.halo_in[state.it % 2].data
    if t.up is not None:
        a[0, 1 : w + 1] = halo[0:w]
    if t.down is not None:
        a[h + 1, 1 : w + 1] = halo[w : 2 * w]
    if t.left is not None:
        a[1 : h + 1, 0] = halo[2 * w : 2 * w + h]
    if t.right is not None:
        a[1 : h + 1, w + 1] = halo[2 * w + h : 2 * w + 2 * h]
    anew[1 : h + 1, 1 : w + 1] = 0.25 * (
        a[0:h, 1 : w + 1] + a[2 : h + 2, 1 : w + 1]
        + a[1 : h + 1, 0:w] + a[1 : h + 1, 2 : w + 2]
    )
    out = state.bound_out.data
    out[0:w] = anew[1, 1 : w + 1]
    out[w : 2 * w] = anew[h, 1 : w + 1]
    out[2 * w : 2 * w + h] = anew[1 : h + 1, 1]
    out[2 * w + h : 2 * w + 2 * h] = anew[1 : h + 1, w]


def _cost(ctx, state: _State) -> KernelCost:
    n = state.tile.height * state.tile.width
    return KernelCost(bytes_moved=8.0 * n, flops=4.0 * n)


@kernel(name="jacobi2d_kernel", cost=_cost)
def _host_kernel(ctx, state: _State) -> None:
    _step_math(state)


def _exchanges(state: _State):
    """Post tuples (send view, remote dest view, count, signal slot, peer)
    and acknowledge tuples (my incoming view, count, wait slot, peer) for
    each active direction, at the *next* parity.

    A post's destination is addressed in the PEER's halo buffer (their
    opposite-direction segment); an acknowledge names MY OWN segment for
    that direction — two different offsets.
    """
    t = state.tile
    w, h = t.width, t.height
    nxt = (state.it + 1) % 2
    out, halo = state.bound_out, state.halo_in[nxt]
    posts, acks = [], []
    def peer_dims(peer):
        pt = Tile.of(t.grid, peer)
        return pt.width, pt.height

    for peer, src_off, n, post_dest_fn, set_slot, ack_off, wait_slot in (
        # my top row -> their 'from down' (their offset uses THEIR width,
        # equal to mine for vertical neighbours); I receive into 'from up'.
        (t.up, 0, w, lambda pw, ph: pw, 1, 0, 0),
        (t.down, w, w, lambda pw, ph: 0, 0, w, 1),
        # my left column -> their 'from right' segment, which starts at
        # 2*their_width + their_height; I receive into my 'from left'.
        (t.left, 2 * w, h, lambda pw, ph: 2 * pw + ph, 3, 2 * w, 2),
        (t.right, 2 * w + h, h, lambda pw, ph: 2 * pw, 2, 2 * w + h, 3),
    ):
        if peer is None:
            continue
        pw, ph = peer_dims(peer)
        posts.append((out.offset_by(src_off, n), halo.offset_by(post_dest_fn(pw, ph), n),
                      n, 4 * nxt + set_slot, peer))
        acks.append((halo.offset_by(ack_off, n), n, 4 * nxt + wait_slot, peer))
    return posts, acks


@device_kernel(name="jacobi2d_dev")
def _device_kernel(ctx, state: _State, comm_d) -> None:
    u = ctx.uniconn
    ctx.compute(_cost(ctx, state))
    _step_math(state)
    val = state.it + 1
    posts, acks = _exchanges(state)
    for src, dest, n, slot, peer in posts:
        u.post(src, dest, n, state.sig.offset_by(slot, 1), val, peer, comm_d)
    for dest, n, slot, peer in acks:
        u.acknowledge(dest, n, state.sig.offset_by(slot, 1), val, peer, comm_d)


def run_2d(
    rank_ctx: RankContext,
    cfg: Jacobi2DConfig,
    backend: Union[str, type, None] = None,
    launch_mode: Union[str, LaunchMode, None] = None,
    collect: bool = False,
) -> Jacobi2DResult:
    """Run the 2D-decomposed Uniconn Jacobi on this rank."""
    env = Environment(rank_ctx, backend=backend)
    env.set_device(env.node_rank())
    comm = Communicator(env)
    device = env.device
    stream = device.create_stream()
    coord = Coordinator(env, stream=stream, launch_mode=launch_mode)
    mode = coord.launch_mode

    grid = make_grid(cfg.nx, cfg.ny, rank_ctx.world_size)
    tile = Tile.of(grid, rank_ctx.rank)
    full = init_global(_Cfg1D(nx=cfg.nx, ny=cfg.ny, iters=1, warmup=0))
    local = tile.init_local(full)
    a = device.malloc(local.size, np.float32)
    anew = device.malloc(local.size, np.float32)
    a.write(local.reshape(-1))
    anew.write(local.reshape(-1))
    # Symmetric-heap contract: every PE allocates the same size, so the
    # staging strip is sized for the largest tile in the grid.
    strip = max(
        2 * Tile.of(grid, r).width + 2 * Tile.of(grid, r).height
        for r in range(grid.size)
    )
    halo_in = (Memory.alloc(env, strip), Memory.alloc(env, strip))
    bound_out = Memory.alloc(env, strip)
    sig = Memory.alloc(env, 8, dtype=np.uint64) if coord.uses_signals else None
    state = _State(tile, a, anew, halo_in, bound_out, sig)

    bx, by = 16, 16
    h_grid = dim3((tile.width + bx - 1) // bx, (tile.height + by - 1) // by)
    coord.bind_kernel(LaunchMode.PureHost, _host_kernel, h_grid, dim3(bx, by),
                      args=lambda: (state.freeze(),))
    if mode.uses_device_api:
        comm_d = comm.to_device()
        coord.bind_kernel(LaunchMode.PureDevice, _device_kernel, h_grid, dim3(bx, by),
                          args=lambda: (state.freeze(), comm_d))
    comm.barrier(stream=stream)

    def step() -> None:
        coord.launch_kernel()
        if mode is not LaunchMode.PureDevice:
            val = state.it + 1
            posts, acks = _exchanges(state)
            coord.comm_start()
            for src, dest, n, slot, peer in posts:
                coord.post(src, dest, n,
                           sig.offset_by(slot, 1) if sig is not None else None,
                           val, peer, comm)
            for dest, n, slot, peer in acks:
                coord.acknowledge(dest, n,
                                  sig.offset_by(slot, 1) if sig is not None else None,
                                  val, peer, comm)
            coord.comm_end()
        state.swap()

    for _ in range(cfg.warmup):
        step()
    comm.barrier(stream=stream)
    stream.synchronize()
    start, end = GpuEvent(device, "j2d-start"), GpuEvent(device, "j2d-end")
    start.record(stream)
    # Steady-state loop via the Coordinator's graph-region API; the buffer
    # swap in step() gives the event timeline a period of 2 iterations.
    i = 0
    while i < cfg.iters:
        i += coord.graph_begin(
            "jacobi2d", iteration=i, total=cfg.iters, parity=2, min_period=2
        )
        if i >= cfg.iters:
            break
        step()
        coord.graph_end()
        i += 1
    end.record(stream)
    end.synchronize()
    total = elapsed(start, end)

    result = Jacobi2DResult(
        rank=rank_ctx.rank,
        nranks=rank_ctx.world_size,
        total_time=total,
        time_per_iter=total / cfg.iters,
        tile=(state.a.data.reshape(tile.height + 2, tile.width + 2)
              [1:-1, 1:-1].copy() if collect else None),
    )
    env.close()
    return result


def launch_2d(
    cfg: Jacobi2DConfig,
    nranks: int,
    *legacy,
    backend: Union[str, type, None] = "gpuccl",
    launch_mode: Union[str, LaunchMode, None] = None,
    machine: str = "perlmutter",
    collect: bool = False,
    stats_out: Optional[dict] = None,
    tracer=None,
    fault_plan=None,
    fault_seed: Optional[int] = None,
    obs: Optional[str] = None,
    trace_out: Optional[str] = None,
    sanitize=None,
    coll=None,
    capture: Optional[str] = None,
):
    """Launch a whole 2D Jacobi job; returns the :class:`RunReport`.

    Everything after ``(cfg, nranks)`` is keyword-only — the same keyword
    set as ``jacobi.launch_variant`` / ``cg.launch_variant`` — and every
    run option is forwarded to :func:`repro.launcher.launch` (this used to
    silently drop all of them except ``machine``). The old positional
    ``backend/launch_mode/machine/collect`` spelling works through a
    warn-once deprecation shim.
    """
    if legacy:
        warn_once(
            "jacobi2d.launch_2d.positional",
            "launch_2d(cfg, nranks, backend, launch_mode, machine, collect) "
            "with positional options is deprecated; pass them by keyword",
        )
        if len(legacy) > 4:
            raise TypeError("launch_2d() takes at most 6 positional arguments")
        backend = legacy[0]
        if len(legacy) > 1:
            launch_mode = legacy[1]
        if len(legacy) > 2:
            machine = legacy[2]
        if len(legacy) > 3:
            collect = legacy[3]
    report = launch(
        lambda ctx: run_2d(ctx, cfg, backend=backend, launch_mode=launch_mode, collect=collect),
        nranks,
        machine=machine,
        tracer=tracer,
        fault_plan=fault_plan,
        fault_seed=fault_seed,
        obs=obs,
        trace_out=trace_out,
        sanitize=sanitize,
        coll=coll,
        capture=capture,
    )
    if stats_out is not None:
        warn_once(
            "launch_variant.stats_out",
            "launch_2d(stats_out=...) is deprecated; use the returned "
            "RunReport's .stats attribute instead",
        )
        stats_out.update(report.stats)
    return report


def reference_2d(cfg: Jacobi2DConfig) -> np.ndarray:
    """Serial reference for the 2D configuration."""
    return serial_jacobi(_Cfg1D(nx=cfg.nx, ny=cfg.ny, iters=1, warmup=0),
                         iters=cfg.warmup + cfg.iters)


def assemble_2d(cfg: Jacobi2DConfig, results) -> np.ndarray:
    """Glue per-rank tiles back into the full grid."""
    full = init_global(_Cfg1D(nx=cfg.nx, ny=cfg.ny, iters=1, warmup=0))
    grid = make_grid(cfg.nx, cfg.ny, len(results))
    for res in results:
        t = Tile.of(grid, res.rank)
        full[t.y0 : t.y1, t.x0 : t.x1] = res.tile
    return full
