"""Python reproduction of UNICONN (CLUSTER 2025) on a simulated multi-GPU
cluster.

Quick start::

    from repro import launch, Environment, Communicator, Coordinator, Memory
    from repro.core import GpucclBackend, LaunchMode

    def app(ctx):
        env = Environment(GpucclBackend, ctx)
        env.set_device(env.node_rank())
        comm = Communicator(env)
        ...

    launch(app, n_ranks=8, machine="perlmutter")

See README.md for the full tour and DESIGN.md for the architecture.
"""

from .config import UniconnConfig, configured, get_config, set_config
from .core import (
    Communicator,
    Coordinator,
    Environment,
    GpucclBackend,
    GpushmemBackend,
    IN_PLACE,
    LaunchMode,
    MPIBackend,
    Memory,
    ReductionOperator,
    ThreadGroup,
)
from .launcher import Job, RankContext, RunReport, launch

__version__ = "1.0.0"

__all__ = [
    "UniconnConfig",
    "configured",
    "get_config",
    "set_config",
    "Communicator",
    "Coordinator",
    "Environment",
    "GpucclBackend",
    "GpushmemBackend",
    "IN_PLACE",
    "LaunchMode",
    "MPIBackend",
    "Memory",
    "ReductionOperator",
    "ThreadGroup",
    "launch",
    "Job",
    "RankContext",
    "RunReport",
    "__version__",
]
