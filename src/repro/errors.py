"""Exception hierarchy shared by the simulator, the backends and Uniconn."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class SimError(ReproError):
    """Base class for simulation-engine errors."""


class DeadlockError(SimError):
    """All simulated processes are blocked and no future event exists.

    Carries a human-readable report of what each live task was waiting on,
    which is the simulated analogue of a hung MPI job.
    """

    def __init__(self, report: str):
        super().__init__(f"simulation deadlock:\n{report}")
        self.report = report


class SimAborted(SimError):
    """Injected into blocked tasks when another task failed.

    User code should never catch this; it exists so the engine can unwind
    every simulated process after the first real failure.
    """


class EngineStateError(SimError):
    """An engine API was used outside its legal lifecycle state."""


class HardwareError(ReproError):
    """Invalid hardware/topology configuration or routing request."""


class GpuError(ReproError):
    """Errors from the simulated GPU runtime (bad stream/device/kernel use)."""


class BackendError(ReproError):
    """Base class for communication-backend errors."""


class MpiError(BackendError):
    """Errors from the simulated MPI library."""


class GpucclError(BackendError):
    """Errors from the simulated GPUCCL (NCCL/RCCL-like) library."""


class GpushmemError(BackendError):
    """Errors from the simulated GPUSHMEM (NVSHMEM-like) library."""


class UniconnError(ReproError):
    """Errors raised by the Uniconn layer itself (misuse of the API)."""
