"""Exception hierarchy shared by the simulator, the backends and Uniconn."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class SimError(ReproError):
    """Base class for simulation-engine errors."""


class DeadlockError(SimError):
    """All simulated processes are blocked and no future event exists.

    Carries a human-readable report of the virtual time of the hang and the
    pending operation (wait reason, including message tags where the waiter
    recorded them) of each live task — the simulated analogue of a hung MPI
    job. ``when`` is the virtual time at which the hang was detected.
    """

    def __init__(self, report: str, when: float = 0.0):
        super().__init__(f"simulation deadlock at t={when:.9g}s:\n{report}")
        self.report = report
        self.when = when


class SimTimeoutError(SimError):
    """A blocking wait exceeded its (virtual-time) timeout.

    Raised by the engine's watchdog on any blocking wait, and by primitives
    that accept explicit timeouts (GPUSHMEM signal waits). Carries the same
    waiter report a :class:`DeadlockError` would, so a hang under fault
    injection is as actionable as a true deadlock.
    """

    def __init__(self, message: str, report: str = "", when: float = 0.0):
        super().__init__(message)
        self.report = report
        self.when = when


class SimAborted(SimError):
    """Injected into blocked tasks when another task failed.

    User code should never catch this; it exists so the engine can unwind
    every simulated process after the first real failure.
    """


class EngineStateError(SimError):
    """An engine API was used outside its legal lifecycle state."""


class HardwareError(ReproError):
    """Invalid hardware/topology configuration or routing request."""


class GpuError(ReproError):
    """Errors from the simulated GPU runtime (bad stream/device/kernel use)."""


class BackendError(ReproError):
    """Base class for communication-backend errors."""


class MpiError(BackendError):
    """Errors from the simulated MPI library."""


class MpiTimeoutError(MpiError):
    """A (retried) MPI transfer gave up: the request completed with an
    error after exhausting its retransmission budget under fault injection.

    Raised from ``Request.wait`` on the side(s) whose operation could not be
    completed, mirroring how a GPU-aware MPI surfaces a NACKed/undeliverable
    message as a per-request failure rather than a global abort.
    """


class GpucclError(BackendError):
    """Errors from the simulated GPUCCL (NCCL/RCCL-like) library."""


class GpushmemError(BackendError):
    """Errors from the simulated GPUSHMEM (NVSHMEM-like) library."""


class UniconnError(ReproError):
    """Errors raised by the Uniconn layer itself (misuse of the API)."""


class CommRevokedError(UniconnError):
    """The communicator was revoked (ULFM MPI_ERR_REVOKED analogue).

    After any rank calls :meth:`Communicator.revoke`, every subsequent
    communication on that communicator raises this error on every member;
    only the recovery operations (``agree``/``shrink``/``health``) remain
    usable. Carries ``reason`` (the revoker's diagnostic) and ``when``.
    """

    def __init__(self, message: str, reason: str = "", when: float = 0.0):
        super().__init__(message)
        self.reason = reason
        self.when = when


class FaultInjectionError(ReproError, ValueError):
    """Invalid fault plan/spec, or an injected failure declared unrecoverable
    (e.g. a checkpoint-restart harness exhausting its restart budget).

    Subclasses :class:`ValueError` so spec-parsing failures behave like any
    other bad-literal error for callers that catch ``ValueError``.
    """
