"""Global defaults: the analogue of Uniconn's compile-time definitions.

The C++ library selects the default backend and launch mode through
compile-time definitions (paper Section V). The Python reproduction keeps a
process-global configuration with the same role; explicit template-style
arguments always override it.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional

from .hardware.profiles import UniconnCosts

__all__ = ["UniconnConfig", "get_config", "set_config", "configured"]


@dataclass(frozen=True)
class UniconnConfig:
    """Process-wide Uniconn defaults."""

    backend: str = "mpi"  # "mpi" | "gpuccl" | "gpushmem"
    launch_mode: str = "PureHost"  # "PureHost" | "PartialDevice" | "PureDevice"
    costs: UniconnCosts = field(default_factory=UniconnCosts)
    # Experimental (paper Section V-A future work): route the MPI backend's
    # Post/Acknowledge over MPI-3 one-sided windows (put + signal) instead
    # of two-sided send/recv. Requires communication buffers from
    # Memory.alloc, which become window-backed under this flag.
    mpi_rma: bool = False
    # Fault injection (repro.sim.faults): a FaultPlan.parse spec string plus
    # the seed for its probabilistic decisions. None = healthy runs with
    # zero injection overhead. Explicit launch() arguments override these.
    fault_spec: Optional[str] = None
    fault_seed: int = 0
    # Happens-before sanitizer (repro.sanitize): None disables it (the
    # default — traces stay byte-identical), "race" instruments every
    # simulated device-memory access and reports conflicting pairs with no
    # happens-before path in report.races. launch(sanitize=...) overrides.
    sanitize: Optional[str] = None
    # Observability level (repro.obs): "off" disables the metrics registry,
    # "metrics" (default) collects host-side counters only, "spans" also
    # emits begin/end span records on the virtual clock for the analyzer /
    # `repro report`. The default level never emits trace records, keeping
    # fast-path traces byte-identical. launch(obs=...) overrides this.
    obs_level: str = "metrics"
    # Graph capture & replay (repro.sim.capture): "off" (default) never
    # installs the capture runtime — traces stay byte-identical and the
    # engine hot path pays a single attribute check. "regions" replays
    # loops annotated via Coordinator.graph_begin/graph_end or
    # repro.sim.loop_region; "auto" additionally runs unannotated-loop
    # detection on Coordinator.launch_kernel. launch(capture=...) overrides.
    capture: str = "off"
    # Job service (repro.serve, docs/SERVE.md): the result-store root
    # (None falls back to $REPRO_SERVE_STORE, then ~/.cache/repro-serve)
    # and the worker-pool width (None = os.cpu_count()). The CLI's
    # --store/--jobs flags override both per invocation.
    serve_store: Optional[str] = None
    serve_jobs: Optional[int] = None


_config = UniconnConfig()


def get_config() -> UniconnConfig:
    """The current process-wide Uniconn configuration."""
    return _config


def set_config(**changes) -> UniconnConfig:
    """Replace fields of the global configuration; returns the new config."""
    global _config
    _config = replace(_config, **changes)
    return _config


@contextmanager
def configured(**changes) -> Iterator[UniconnConfig]:
    """Temporarily override configuration fields."""
    global _config
    saved = _config
    _config = replace(_config, **changes)
    try:
        yield _config
    finally:
        _config = saved
