"""Deprecation shims for the pre-observability API surface.

The core-four classes (Environment/Communicator/Coordinator/Memory) and
``launcher.launch`` moved optional parameters to keyword-only form; the old
positional spellings keep working through these warn-once shims. Each
distinct call shape warns a single time per process so migrated code stays
quiet and unmigrated code is nudged without drowning output — and the CI
deprecation lane (``-W error::DeprecationWarning``) turns any use into a
hard failure for code that claims to be on the new API.
"""

from __future__ import annotations

import warnings
from typing import Set

__all__ = ["warn_once"]

_warned: Set[str] = set()


def warn_once(key: str, message: str, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning`` once per process for each distinct key."""
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)
